#include "obs/event_trace.h"

#include <cassert>
#include <cstdio>

namespace st::obs {

const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kLogin: return "login";
    case EventKind::kLogout: return "logout";
    case EventKind::kProbe: return "probe";
    case EventKind::kRepair: return "repair";
    case EventKind::kServerFallback: return "server_fallback";
    case EventKind::kPrefetchIssue: return "prefetch_issue";
    case EventKind::kPrefetchHit: return "prefetch_hit";
    case EventKind::kChunk: return "chunk";
    case EventKind::kRebuffer: return "rebuffer";
    case EventKind::kFault: return "fault";
    case EventKind::kViolation: return "violation";
    case EventKind::kShed: return "shed";
    case EventKind::kBreaker: return "breaker";
  }
  return "?";
}

EventTrace::Options::Options() {
  sampleEvery.fill(1);
  // Hot kinds: one chunk event per credited transfer batch and one probe per
  // maintenance round would still dominate the buffer at full scale.
  sampleEvery[static_cast<std::size_t>(EventKind::kChunk)] = 16;
  sampleEvery[static_cast<std::size_t>(EventKind::kProbe)] = 8;
}

EventTrace::EventTrace(Options options) : options_(options) {
  assert(options_.capacity > 0);
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.resize(options_.capacity);
}

void EventTrace::record(sim::SimTime time, EventKind kind, std::uint32_t actor,
                        std::uint32_t subject, std::uint64_t value) {
  ++seen_;
  const auto kindIndex = static_cast<std::size_t>(kind);
  const std::uint32_t every = options_.sampleEvery[kindIndex];
  if (every == 0) return;
  if (seenByKind_[kindIndex]++ % every != 0) return;
  ring_[head_] = TraceEvent{time, kind, actor, subject, value};
  head_ = (head_ + 1) % ring_.size();
  ++kept_;
}

std::vector<TraceEvent> EventTrace::events() const {
  std::vector<TraceEvent> out;
  const std::size_t count = size();
  out.reserve(count);
  // When the ring wrapped, the oldest retained event sits at head_.
  const std::size_t start =
      kept_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void EventTrace::saveState(snapshot::Writer& w) const {
  w.section(0x54524345);  // "ECRT"
  w.u64(ring_.size());
  w.u64(head_);
  w.u64(seen_);
  w.u64(kept_);
  for (const std::uint64_t byKind : seenByKind_) w.u64(byKind);
  // Only slots the ring has actually filled carry information.
  const std::size_t filled = size();
  const std::size_t start = kept_ < ring_.size() ? 0 : head_;
  w.u64(filled);
  for (std::size_t i = 0; i < filled; ++i) {
    const TraceEvent& event = ring_[(start + i) % ring_.size()];
    w.i64(event.time);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u32(event.actor);
    w.u32(event.subject);
    w.u64(event.value);
  }
}

bool EventTrace::loadState(snapshot::Reader& r) {
  r.section(0x54524345, "event trace");
  const std::uint64_t capacity = r.u64();
  if (!r.ok() || capacity != ring_.size()) {
    r.fail("event trace capacity mismatch");
    return false;
  }
  head_ = static_cast<std::size_t>(r.u64());
  seen_ = r.u64();
  kept_ = r.u64();
  for (std::uint64_t& byKind : seenByKind_) byKind = r.u64();
  const std::size_t filled = r.count(8);
  if (!r.ok() || head_ >= ring_.size() || filled > ring_.size() ||
      filled != size()) {
    r.fail("event trace state inconsistent");
    return false;
  }
  const std::size_t start = kept_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < filled; ++i) {
    TraceEvent& event = ring_[(start + i) % ring_.size()];
    event.time = r.i64();
    const std::uint8_t kind = r.u8();
    if (kind >= kEventKindCount) {
      r.fail("event trace kind out of range");
      return false;
    }
    event.kind = static_cast<EventKind>(kind);
    event.actor = r.u32();
    event.subject = r.u32();
    event.value = r.u64();
  }
  return r.ok();
}

bool EventTrace::writeJsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const TraceEvent& event : events()) {
    std::fprintf(file,
                 "{\"t\":%llu,\"type\":\"%s\",\"actor\":%u,\"subject\":%u,"
                 "\"value\":%llu}\n",
                 static_cast<unsigned long long>(event.time),
                 eventKindName(event.kind), event.actor, event.subject,
                 static_cast<unsigned long long>(event.value));
  }
  std::fclose(file);
  return true;
}

}  // namespace st::obs
