#include "obs/registry.h"

#include <algorithm>
#include <cassert>

namespace st::obs {

namespace {

// Shared lower-bound over the sorted Snapshot entry vector.
auto entryLowerBound(const std::vector<Snapshot::Entry>& entries,
                     std::string_view name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Snapshot::Entry& e, std::string_view n) { return e.name < n; });
}

}  // namespace

void Snapshot::set(std::string_view name, std::uint64_t value) {
  const auto it = entryLowerBound(entries_, name);
  if (it != entries_.end() && it->name == name) {
    const auto index = it - entries_.begin();
    entries_[static_cast<std::size_t>(index)].value = value;
    return;
  }
  entries_.insert(it, Entry{std::string(name), value});
}

std::uint64_t Snapshot::at(std::string_view name) const {
  const auto it = entryLowerBound(entries_, name);
  return (it != entries_.end() && it->name == name) ? it->value : 0;
}

bool Snapshot::has(std::string_view name) const {
  const auto it = entryLowerBound(entries_, name);
  return it != entries_.end() && it->name == name;
}

const Registry::Slot* Registry::find(std::string_view name) const {
  for (const Slot& slot : slots_) {
    if (slot.name == name) return &slot;
  }
  return nullptr;
}

Registry::Slot* Registry::find(std::string_view name) {
  for (Slot& slot : slots_) {
    if (slot.name == name) return &slot;
  }
  return nullptr;
}

bool Registry::restoreCounter(std::string_view name, std::uint64_t value) {
  Slot* slot = find(name);
  if (slot == nullptr || !slot->counter) return false;
  slot->counter->set(value);
  return true;
}

Counter& Registry::counter(std::string_view name) {
  for (Slot& slot : slots_) {
    if (slot.name != name) continue;
    if (slot.counter) return *slot.counter;
    // Name already registered as a gauge: programming error. Keep the run
    // alive in release builds by handing out a counter that is not part of
    // any snapshot.
    assert(false && "obs::Registry name already registered as a gauge");
    if (!orphan_) orphan_ = std::make_unique<Counter>();
    return *orphan_;
  }
  Slot slot;
  slot.name = std::string(name);
  slot.counter = std::make_unique<Counter>();
  slots_.push_back(std::move(slot));
  return *slots_.back().counter;
}

bool Registry::addGauge(std::string_view name,
                        std::function<std::uint64_t()> fn) {
  assert(fn);
  if (find(name) != nullptr) return false;
  Slot slot;
  slot.name = std::string(name);
  slot.gauge = std::move(fn);
  slots_.push_back(std::move(slot));
  return true;
}

bool Registry::has(std::string_view name) const {
  return find(name) != nullptr;
}

std::uint64_t Registry::value(std::string_view name) const {
  const Slot* slot = find(name);
  assert(slot != nullptr && "obs::Registry::value: unknown name");
  return slot == nullptr ? 0 : slot->value();
}

Snapshot Registry::snapshot() const {
  Snapshot snapshot;
  for (const Slot& slot : slots_) {
    snapshot.set(slot.name, slot.value());
  }
  return snapshot;
}

}  // namespace st::obs
