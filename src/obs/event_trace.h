// Structured protocol-event tracing: a ring buffer of sim-time-stamped
// events recorded behind the compile-out-able ST_TRACE macro.
//
// The paper's churn and new-content analyses (§V) reason about *when*
// protocol events happen — probe rounds detecting dead neighbors, repairs
// refilling links, server fallbacks spiking while caches are cold. The
// counters in obs::Registry only say how often; this sink records the
// timeline, cheap enough to leave on at full scale:
//
//  * fixed-capacity ring — full-length runs keep the most recent window
//    instead of growing without bound;
//  * per-event-kind sampling — hot kinds (chunk credits, probes) keep every
//    Nth event, rare kinds (repairs, fallbacks) keep all;
//  * ST_TRACE compiles to nothing when the build sets -DST_TRACE_ENABLED=0,
//    so the hot path carries no branch at all.
//
// Events are recorded from the single-threaded simulator, so buffer order is
// sim-time order. writeJsonl() flushes one JSON object per line.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "snapshot/codec.h"

#ifndef ST_TRACE_ENABLED
#define ST_TRACE_ENABLED 1
#endif

namespace st::obs {

enum class EventKind : std::uint8_t {
  kLogin = 0,
  kLogout,
  kProbe,
  kRepair,
  kServerFallback,
  kPrefetchIssue,
  kPrefetchHit,
  kChunk,
  kRebuffer,
  kFault,      // scripted fault activation (actor = fault kind)
  kViolation,  // confirmed invariant-audit violation
  kShed,       // admission control rejected a flow (actor = requester)
  kBreaker,    // circuit breaker transition (value: 1 open, 2 half, 0 close)
};
inline constexpr std::size_t kEventKindCount = 13;

// Stable lowercase name used in JSONL output ("server_fallback", ...).
[[nodiscard]] const char* eventKindName(EventKind kind);

struct TraceEvent {
  sim::SimTime time = 0;
  EventKind kind = EventKind::kLogin;
  std::uint32_t actor = 0;    // the user driving the event
  std::uint32_t subject = 0;  // counterpart: video, peer, ... (kind-specific)
  std::uint64_t value = 0;    // payload (e.g. chunks credited)
};

class EventTrace {
 public:
  struct Options {
    std::size_t capacity = 1 << 18;  // events retained (ring buffer)
    // Keep every Nth event of each kind (0 = drop the kind entirely).
    // Defaults keep everything except the two hot kinds.
    std::array<std::uint32_t, kEventKindCount> sampleEvery;
    Options();
  };

  explicit EventTrace(Options options = Options());

  void record(sim::SimTime time, EventKind kind, std::uint32_t actor,
              std::uint32_t subject, std::uint64_t value);

  // Retained events, oldest first (== ascending sim time).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::uint64_t seen() const { return seen_; }  // pre-sampling
  [[nodiscard]] std::uint64_t kept() const { return kept_; }  // post-sampling
  // Events sampled in but since overwritten by the ring.
  [[nodiscard]] std::uint64_t overwritten() const {
    return kept_ - static_cast<std::uint64_t>(size());
  }
  [[nodiscard]] std::size_t size() const {
    return kept_ < ring_.size() ? static_cast<std::size_t>(kept_)
                                : ring_.size();
  }

  // One JSON object per line:
  //   {"t":123456,"type":"repair","actor":5,"subject":7,"value":0}
  // with t in simulated microseconds. Returns false on I/O failure.
  bool writeJsonl(const std::string& path) const;

  // Checkpoint/restore: persists the ring contents and the sampling
  // counters, so a restored run keeps pre-snapshot events (its final
  // writeJsonl matches an uninterrupted run byte-for-byte) and continues
  // every per-kind keep-every-Nth cadence mid-stride. The restored trace
  // must be constructed with the same Options.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  Options options_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write position
  std::uint64_t seen_ = 0;
  std::uint64_t kept_ = 0;
  std::array<std::uint64_t, kEventKindCount> seenByKind_{};
};

}  // namespace st::obs

// ST_TRACE(sink, time, kind, actor, subject, value)
//
// `sink` is an obs::EventTrace* (null = tracing off for this run); `kind` is
// the bare EventKind enumerator name. With ST_TRACE_ENABLED=0 the macro
// expands to nothing and none of its arguments are evaluated.
#if ST_TRACE_ENABLED
#define ST_TRACE(sink, time, kind, actor, subject, value)               \
  do {                                                                  \
    ::st::obs::EventTrace* stTraceSink_ = (sink);                       \
    if (stTraceSink_ != nullptr) {                                      \
      stTraceSink_->record((time), ::st::obs::EventKind::kind, (actor), \
                           (subject), (value));                         \
    }                                                                   \
  } while (false)
#else
#define ST_TRACE(sink, time, kind, actor, subject, value) \
  do {                                                    \
  } while (false)
#endif
