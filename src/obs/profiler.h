// Wall-clock phase profiling for experiment runs.
//
// The runner wraps each stage — trace generation, overlay/system setup, the
// event loop, metric extraction — in a scope; the per-phase totals land in
// ExperimentResult and are aggregated across seeds by MultiSeedSummary.
// Wall-clock readings are execution telemetry: like the thread-pool numbers,
// they are excluded from the determinism guarantee.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace st::obs {

struct Phase {
  std::string name;
  double ms = 0.0;           // accumulated wall clock
  std::uint64_t calls = 0;   // scopes that contributed
};

class PhaseProfiler {
 public:
  // RAII scope: accumulates elapsed wall time into its phase on destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : profiler_(other.profiler_), slot_(other.slot_),
          start_(other.start_) {
      other.profiler_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope();

   private:
    friend class PhaseProfiler;
    Scope(PhaseProfiler* profiler, std::size_t slot)
        : profiler_(profiler), slot_(slot),
          start_(std::chrono::steady_clock::now()) {}

    PhaseProfiler* profiler_;
    std::size_t slot_;
    std::chrono::steady_clock::time_point start_;
  };

  // Starts timing `name`; repeated scopes of the same name accumulate.
  // Phases keep first-use order (the natural pipeline order in reports).
  [[nodiscard]] Scope scope(std::string_view name);

  // Accumulates externally measured telemetry into a phase — used by the
  // sharded engine to report per-shard event counts (calls) gathered inside
  // the event loop, where an RAII scope cannot reach.
  void record(std::string_view name, double ms, std::uint64_t calls);

  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }

 private:
  std::size_t slotFor(std::string_view name);

  std::vector<Phase> phases_;
};

}  // namespace st::obs
