// NetTube baseline (Cheng & Liu, INFOCOM'09), as described in §I/§IV-C.
//
// Per-video overlays: the viewers of a video form an overlay; a node joins
// the overlay of every video it watches and *stays* in all of them while
// online, so its link count grows with the number of videos watched (the
// behaviour Fig. 15/18 contrasts with SocialTube). Search: query neighbors
// within two hops across all of the node's overlays; on a miss, ask the
// server directory; the server serves the video itself only when no peer
// has it. Nodes cache every watched video (kept across sessions) and
// prefetch the first chunks of three videos picked at random from their
// neighbors' caches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "baselines/video_directory.h"
#include "util/slot_pool.h"
#include "vod/context.h"
#include "vod/query_dedup.h"
#include "vod/system.h"
#include "vod/transfer.h"
#include "vod/video_cache.h"

namespace st::baselines {

class NetTubeSystem final : public vod::VodSystem {
 public:
  NetTubeSystem(vod::SystemContext& ctx, vod::TransferManager& transfers);

  [[nodiscard]] std::string_view name() const override { return "NetTube"; }

  void onLogin(UserId user) override;
  void onLogout(UserId user, bool graceful) override;
  void requestVideo(UserId user, VideoId video) override;
  [[nodiscard]] NodeStats nodeStats(UserId user) const override;
  [[nodiscard]] SystemStats statsSnapshot() const override {
    return {.serverRegistrations = directory_.totalRegistrations()};
  }

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const vod::VideoCache& cache(UserId user) const {
    return nodes_[user.index()].cache;
  }
  [[nodiscard]] std::size_t overlayCount(UserId user) const {
    return nodes_[user.index()].overlays.size();
  }
  [[nodiscard]] const VideoDirectory& directory() const { return directory_; }

  // Structural contract audit (see vod/audit.h): per-overlay link caps,
  // symmetry, no empty overlay entries, repair-horizon staleness, directory
  // and cache consistency.
  void auditInvariants(vod::AuditReport& report) const override;

 private:
  struct Node {
    // video -> links held in that video's overlay.
    std::unordered_map<VideoId, std::vector<UserId>> overlays;
    vod::VideoCache cache;
    sim::EventHandle probeTimer;

    Node(std::size_t maxVideos, std::size_t prefetchSlots)
        : cache(maxVideos, prefetchSlots) {}
  };

  struct Search {
    UserId user;
    VideoId video;
    bool prefetchHit = false;
    sim::SimTime requestTime = 0;
    sim::EventHandle deadline;
  };

  // Distinct neighbors across all of the node's overlays.
  [[nodiscard]] std::vector<UserId> allNeighbors(const Node& node) const;
  [[nodiscard]] bool seenQuery(UserId at, std::uint64_t queryId);
  // Abandons the user's in-flight search, if any (logout, new request).
  void abandonSearch(UserId user);

  void connectOverlayLink(UserId a, UserId b, VideoId video);
  void dropAllLinks(UserId holder, UserId gone);

  void beginSearch(UserId user, VideoId video, bool prefetchHit,
                   sim::SimTime requestTime);
  void floodQuery(UserId origin, UserId at, VideoId video,
                  std::uint64_t queryId, int ttl);
  void onSearchHit(std::uint64_t queryId, UserId provider);
  void askServerDirectory(std::uint64_t queryId);
  void resolveSearch(std::uint64_t queryId, UserId provider,
                     const std::vector<UserId>& overlayPeers);
  void startDownload(UserId user, VideoId video, UserId provider,
                     bool prefetchHit, sim::SimTime requestTime);
  void onVideoCached(UserId user, VideoId video);

  void prefetchFromNeighbors(UserId user);
  void probeNeighbors(UserId user);

  vod::SystemContext& ctx_;
  vod::TransferManager& transfers_;
  VideoDirectory directory_;
  std::vector<Node> nodes_;
  // Pooled search records; the pool id doubles as the flood query id (never
  // reused, so it is a valid generation stamp for the dedup array).
  SlotPool<Search> searches_;
  // Per-node flood dedup stamps (one uint64 per node, no allocation).
  vod::QueryDedup queryDedup_;
  // Indexed by user: the user's in-flight search id, 0 if none.
  std::vector<std::uint64_t> activeSearch_;
};

}  // namespace st::baselines
