// NetTube baseline (Cheng & Liu, INFOCOM'09), as described in §I/§IV-C.
//
// Per-video overlays: the viewers of a video form an overlay; a node joins
// the overlay of every video it watches and *stays* in all of them while
// online, so its link count grows with the number of videos watched (the
// behaviour Fig. 15/18 contrasts with SocialTube). Search: query neighbors
// within two hops across all of the node's overlays; on a miss, ask the
// server directory; the server serves the video itself only when no peer
// has it. Nodes cache every watched video (kept across sessions) and
// prefetch the first chunks of three videos picked at random from their
// neighbors' caches.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "baselines/video_directory.h"
#include "util/slot_pool.h"
#include "vod/context.h"
#include "vod/query_dedup.h"
#include "vod/system.h"
#include "vod/transfer.h"
#include "vod/video_cache.h"

namespace st::baselines {

class NetTubeSystem final : public vod::VodSystem, public sim::EventFactory {
 public:
  // Tag kinds (Component::kNetTube) — append-only, stored in snapshots.
  static constexpr std::uint8_t kProbeEvent = 0;        // a = user (periodic)
  static constexpr std::uint8_t kDropLinksEvent = 1;    // a = departing user
  static constexpr std::uint8_t kInventoryAtServer = 2;  // a=user b=payload
  static constexpr std::uint8_t kFloodHop = 3;     // a=origin b=video
                                                   // c=queryId d=ttl
  static constexpr std::uint8_t kSearchHit = 4;    // a=queryId b=provider
  static constexpr std::uint8_t kAskDirectory = 5;  // a=queryId (deadline)
  static constexpr std::uint8_t kDirectoryAtServer = 6;  // a=user
                                                         // b=video|join<<32
                                                         // c=queryId
  static constexpr std::uint8_t kDirectoryReply = 7;  // a=queryId b=payload
  static constexpr std::uint8_t kServerWatch = 8;     // a=user b=video|hit<<32
                                                      // c=payload d=reqT
  static constexpr std::uint8_t kCachedAtServer = 9;  // a=user b=video
  static constexpr std::uint8_t kCachedReply = 10;    // a=video b=payload

  NetTubeSystem(vod::SystemContext& ctx, vod::TransferManager& transfers);
  ~NetTubeSystem() override;

  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override;
  void discard(const sim::EventTag& tag) override;
  void onRestored(const sim::EventTag& tag, sim::EventHandle handle) override;

  [[nodiscard]] std::string_view name() const override { return "NetTube"; }

  void onLogin(UserId user) override;
  void onLogout(UserId user, bool graceful) override;
  void requestVideo(UserId user, VideoId video) override;
  void watchPlaybackReady(UserId user, VideoId video, sim::SimTime delay,
                          bool timedOut) override;
  void watchFinished(UserId user, VideoId video, bool complete) override;
  void prefetchArrived(UserId user, VideoId video, bool fromPeer) override;
  [[nodiscard]] NodeStats nodeStats(UserId user) const override;
  [[nodiscard]] SystemStats statsSnapshot() const override {
    return {.serverRegistrations = directory_.totalRegistrations()};
  }

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] const vod::VideoCache& cache(UserId user) const {
    return cache_[user.index()];
  }
  [[nodiscard]] std::size_t overlayCount(UserId user) const {
    return overlays_[user.index()].size();
  }
  [[nodiscard]] const VideoDirectory& directory() const { return directory_; }

  // Structural contract audit (see vod/audit.h): per-overlay link caps,
  // symmetry, no empty overlay entries, repair-horizon staleness, directory
  // and cache consistency.
  void auditInvariants(vod::AuditReport& report) const override;

  // Serializes the directory, per-node overlays/caches, the search pool, and
  // the flood-dedup stamps. Probe timers and search deadlines are re-stored
  // from the simulator queue via onRestored().
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  // video -> links held in that video's overlay. Ordered map: iteration
  // feeds allNeighbors()/probe sweeps (and the snapshot), so the walk
  // order must be a function of the keys, not of hashing.
  using Overlays = std::map<VideoId, std::vector<UserId>>;

  struct Search {
    UserId user;
    VideoId video;
    bool prefetchHit = false;
    sim::SimTime requestTime = 0;
    sim::EventHandle deadline;
  };

  // Distinct neighbors across all of the node's overlays.
  [[nodiscard]] std::vector<UserId> allNeighbors(const Overlays& overlays) const;
  [[nodiscard]] bool seenQuery(UserId at, std::uint64_t queryId);
  // Abandons the user's in-flight search, if any (logout, new request).
  void abandonSearch(UserId user);

  void connectOverlayLink(UserId a, UserId b, VideoId video);
  void dropAllLinks(UserId holder, UserId gone);

  void beginSearch(UserId user, VideoId video, bool prefetchHit,
                   sim::SimTime requestTime);
  void floodQuery(UserId origin, UserId at, VideoId video,
                  std::uint64_t queryId, int ttl);
  void onSearchHit(std::uint64_t queryId, UserId provider);
  void askServerDirectory(std::uint64_t queryId);
  // Tag-rebuilt message bodies (see the kind list above).
  void inventoryAtServer(const sim::EventTag& tag);
  void directoryAtServer(const sim::EventTag& tag);
  void applyDirectoryReply(const sim::EventTag& tag);
  void serverWatch(const sim::EventTag& tag);
  void cachedAtServer(const sim::EventTag& tag);
  void applyCachedReply(const sim::EventTag& tag);
  void resolveSearch(std::uint64_t queryId, UserId provider,
                     const std::vector<UserId>& overlayPeers);
  void startDownload(UserId user, VideoId video, UserId provider,
                     bool prefetchHit, sim::SimTime requestTime);
  void onVideoCached(UserId user, VideoId video);

  void prefetchFromNeighbors(UserId user);
  void probeNeighbors(UserId user);

  vod::SystemContext& ctx_;
  vod::TransferManager& transfers_;
  VideoDirectory directory_;
  // Struct-of-arrays node state, indexed by user. Splitting the old Node
  // struct keeps the cache scans (prefetch, audit) and timer bookkeeping off
  // the cache lines that the overlay walks touch.
  std::vector<Overlays> overlays_;
  std::vector<vod::VideoCache> cache_;
  std::vector<sim::EventHandle> probeTimer_;
  // Pooled search records; the pool id doubles as the flood query id (never
  // reused, so it is a valid generation stamp for the dedup array).
  SlotPool<Search> searches_;
  // Per-node flood dedup stamps (one uint64 per node, no allocation).
  vod::QueryDedup queryDedup_;
  // Indexed by user: the user's in-flight search id, 0 if none.
  std::vector<std::uint64_t> activeSearch_;
};

}  // namespace st::baselines
