// PA-VoD baseline (Huang, Li & Ross, SIGCOMM'07), as described in §I.
//
// Pure peer-assisted serving with no durable overlay and no cache: when a
// user requests a video the server directs it to peers *currently watching*
// that video (and holding a complete copy); when none exist the server
// serves the video itself. A node stops providing the moment its playback
// ends — with YouTube-scale short videos this leaves most requests to the
// server, which is the paper's core criticism.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/video_directory.h"
#include "vod/context.h"
#include "vod/system.h"
#include "vod/transfer.h"

namespace st::baselines {

class PaVodSystem final : public vod::VodSystem {
 public:
  PaVodSystem(vod::SystemContext& ctx, vod::TransferManager& transfers);

  [[nodiscard]] std::string_view name() const override { return "PA-VoD"; }

  void onLogin(UserId user) override;
  void onLogout(UserId user, bool graceful) override;
  void requestVideo(UserId user, VideoId video) override;
  void onPlaybackComplete(UserId user, VideoId video) override;
  [[nodiscard]] NodeStats nodeStats(UserId user) const override;
  [[nodiscard]] SystemStats statsSnapshot() const override {
    return {.serverRegistrations = watchers_.totalRegistrations()};
  }

  [[nodiscard]] const VideoDirectory& watchers() const { return watchers_; }

  // Structural contract audit (see vod/audit.h): every advertised watcher
  // must be online, still watching the advertised video, and hold a full
  // copy — all maintained synchronously, so every rule is instant.
  void auditInvariants(vod::AuditReport& report) const override;

 private:
  struct Node {
    VideoId current = VideoId::invalid();
    bool haveFull = false;     // finished downloading the current video
    bool peerProvider = false; // current download is peer-sourced (link metric)
  };

  void startDownload(UserId user, VideoId video, UserId provider,
                     std::vector<UserId> extraProviders,
                     sim::SimTime requestTime);

  vod::SystemContext& ctx_;
  vod::TransferManager& transfers_;
  // Nodes currently watching a video AND holding a full copy of it.
  VideoDirectory watchers_;
  std::vector<Node> nodes_;
};

}  // namespace st::baselines
