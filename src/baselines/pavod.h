// PA-VoD baseline (Huang, Li & Ross, SIGCOMM'07), as described in §I.
//
// Pure peer-assisted serving with no durable overlay and no cache: when a
// user requests a video the server directs it to peers *currently watching*
// that video (and holding a complete copy); when none exist the server
// serves the video itself. A node stops providing the moment its playback
// ends — with YouTube-scale short videos this leaves most requests to the
// server, which is the paper's core criticism.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/video_directory.h"
#include "vod/context.h"
#include "vod/system.h"
#include "vod/transfer.h"

namespace st::baselines {

class PaVodSystem final : public vod::VodSystem, public sim::EventFactory {
 public:
  // Tag kinds (Component::kPaVod) — append-only, stored in snapshots.
  static constexpr std::uint8_t kWatchersAtServer = 0;  // a=user b=video
                                                        // d=reqT
  static constexpr std::uint8_t kWatchersReply = 1;  // a=video b=payload
                                                     // c=provider d=reqT
  static constexpr std::uint8_t kProviderRegister = 2;  // a=user b=video

  PaVodSystem(vod::SystemContext& ctx, vod::TransferManager& transfers);
  ~PaVodSystem() override;

  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override;
  void discard(const sim::EventTag& tag) override;

  [[nodiscard]] std::string_view name() const override { return "PA-VoD"; }

  void onLogin(UserId user) override;
  void onLogout(UserId user, bool graceful) override;
  void requestVideo(UserId user, VideoId video) override;
  void onPlaybackComplete(UserId user, VideoId video) override;
  void watchFinished(UserId user, VideoId video, bool complete) override;
  [[nodiscard]] NodeStats nodeStats(UserId user) const override;
  [[nodiscard]] SystemStats statsSnapshot() const override {
    return {.serverRegistrations = watchers_.totalRegistrations()};
  }

  [[nodiscard]] const VideoDirectory& watchers() const { return watchers_; }

  // Structural contract audit (see vod/audit.h): every advertised watcher
  // must be online, still watching the advertised video, and hold a full
  // copy — all maintained synchronously, so every rule is instant.
  void auditInvariants(vod::AuditReport& report) const override;

  // Serializes the watcher directory and per-node watch state. PA-VoD holds
  // no timers, so nothing needs re-storing from the simulator queue.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  // Clears the user's per-session watch state (login, logout, playback end).
  void resetNode(UserId user) {
    current_[user.index()] = VideoId::invalid();
    haveFull_[user.index()] = 0;
    peerProvider_[user.index()] = 0;
  }

  // Tag-rebuilt message bodies (see the kind list above).
  void watchersAtServer(const sim::EventTag& tag);
  void applyWatchersReply(const sim::EventTag& tag);
  void providerRegister(const sim::EventTag& tag);
  void startDownload(UserId user, VideoId video, UserId provider,
                     std::vector<UserId> extraProviders,
                     sim::SimTime requestTime);

  vod::SystemContext& ctx_;
  vod::TransferManager& transfers_;
  // Nodes currently watching a video AND holding a full copy of it.
  VideoDirectory watchers_;
  // Struct-of-arrays node state, indexed by user: the video being watched,
  // whether its download completed (the node can provide), and whether the
  // current download is peer-sourced (link metric). Plain bytes rather than
  // vector<bool> so element writes stay independent.
  std::vector<VideoId> current_;
  std::vector<std::uint8_t> haveFull_;
  std::vector<std::uint8_t> peerProvider_;
};

}  // namespace st::baselines
