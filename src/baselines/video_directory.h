// Server-side per-video membership directory used by the baselines.
//
// NetTube's server tracks, for every video, which online nodes hold it (the
// per-video overlay); PA-VoD's server tracks which nodes are *currently
// watching* each video. This is exactly the state the paper argues is much
// larger than SocialTube's per-channel tracking.
#pragma once

#include "vod/membership.h"

namespace st::baselines {

using VideoDirectory = vod::MembershipDirectory<VideoId>;

}  // namespace st::baselines
