#include "baselines/nettube.h"

#include <algorithm>
#include <cassert>

namespace st::baselines {

namespace {
bool contains(const std::vector<UserId>& list, UserId value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}
}  // namespace

NetTubeSystem::NetTubeSystem(vod::SystemContext& ctx,
                             vod::TransferManager& transfers)
    : ctx_(ctx),
      transfers_(transfers),
      queryDedup_(ctx.catalog().userCount()),
      activeSearch_(ctx.catalog().userCount(), 0) {
  nodes_.reserve(ctx.catalog().userCount());
  for (std::size_t i = 0; i < ctx.catalog().userCount(); ++i) {
    nodes_.emplace_back(ctx.config().cacheCapacityVideos,
                        ctx.config().prefetchCacheSlots);
  }
}

vod::VodSystem::NodeStats NetTubeSystem::nodeStats(UserId user) const {
  // Per-overlay links are counted separately even when they join the same
  // pair of nodes — that surplus is the redundancy §IV-C calls out ("two
  // nodes may be connected by redundant links; each link corresponds to
  // one video overlay").
  const Node& node = nodes_[user.index()];
  NodeStats stats;
  std::vector<UserId> seen;
  for (const auto& [video, links] : node.overlays) {
    stats.links += links.size();
    for (const UserId n : links) {
      if (contains(seen, n)) {
        ++stats.redundantLinks;  // pair already linked via another overlay
      } else {
        seen.push_back(n);
      }
    }
  }
  return stats;
}

std::vector<UserId> NetTubeSystem::allNeighbors(const Node& node) const {
  std::vector<UserId> result;
  for (const auto& [video, links] : node.overlays) {
    for (const UserId n : links) {
      if (!contains(result, n)) result.push_back(n);
    }
  }
  return result;
}

bool NetTubeSystem::seenQuery(UserId at, std::uint64_t queryId) {
  return queryDedup_.checkAndMark(at.index(), queryId);
}

void NetTubeSystem::abandonSearch(UserId user) {
  const std::uint64_t queryId = activeSearch_[user.index()];
  if (queryId == 0) return;
  if (Search* search = searches_.find(queryId)) {
    ctx_.sim().cancel(search->deadline);
    searches_.erase(queryId);
  }
  activeSearch_[user.index()] = 0;
}

void NetTubeSystem::connectOverlayLink(UserId a, UserId b, VideoId video) {
  if (a == b) return;
  // Look up before inserting: a refused connect must not leave an empty
  // overlay entry behind (it would distort overlayCount and the joining
  // heuristic in askServerDirectory).
  Node& na = nodes_[a.index()];
  Node& nb = nodes_[b.index()];
  const auto ia = na.overlays.find(video);
  if (ia != na.overlays.end() && contains(ia->second, b)) return;
  const std::size_t cap = ctx_.config().linksPerVideoOverlay;
  if (ia != na.overlays.end() && ia->second.size() >= cap) return;
  const auto ib = nb.overlays.find(video);
  if (ib != nb.overlays.end() && ib->second.size() >= cap) return;
  na.overlays[video].push_back(b);
  nb.overlays[video].push_back(a);
}

void NetTubeSystem::dropAllLinks(UserId holder, UserId gone) {
  Node& node = nodes_[holder.index()];
  for (auto it = node.overlays.begin(); it != node.overlays.end();) {
    auto& links = it->second;
    const auto linkIt = std::find(links.begin(), links.end(), gone);
    if (linkIt != links.end()) links.erase(linkIt);
    it = links.empty() ? node.overlays.erase(it) : std::next(it);
  }
}

void NetTubeSystem::onLogin(UserId user) {
  Node& node = nodes_[user.index()];
  node.overlays.clear();
  // Report the cached inventory so the server can direct other nodes here
  // ("users need to report the changes of videos they watch", §IV-A).
  if (!node.cache.videoList().empty()) {
    const std::vector<VideoId> cached = node.cache.videoList();
    ctx_.sendToServer(user, [this, user, cached] {
      if (!ctx_.isOnline(user)) return;
      for (const VideoId video : cached) directory_.add(user, video);
    });
  }
  node.probeTimer = ctx_.sim().schedulePeriodic(
      ctx_.config().probeInterval, [this, user] { probeNeighbors(user); });
}

void NetTubeSystem::onLogout(UserId user, bool graceful) {
  Node& node = nodes_[user.index()];
  ctx_.sim().cancel(node.probeTimer);
  node.probeTimer = sim::EventHandle{};

  abandonSearch(user);

  if (graceful) {
    for (const UserId n : allNeighbors(node)) {
      ctx_.sendUser(user, n, [this, n, user] { dropAllLinks(n, user); });
    }
  }
  directory_.removeAll(user);
  node.overlays.clear();
}

void NetTubeSystem::requestVideo(UserId user, VideoId video) {
  Node& node = nodes_[user.index()];
  const sim::SimTime requestTime = ctx_.sim().now();

  if (node.cache.contains(video)) {
    ctx_.metrics().countCacheHit();
    notifyPlayback(user, video, 0, false);
    prefetchFromNeighbors(user);
    return;
  }

  const bool prefetchHit = node.cache.hasFirstChunk(video);
  if (prefetchHit) {
    ctx_.metrics().countPrefetchHit();
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kPrefetchHit, user.value(),
             video.value(), 0);
    notifyPlayback(user, video, 0, false);
    prefetchFromNeighbors(user);
  }
  beginSearch(user, video, prefetchHit, requestTime);
}

void NetTubeSystem::beginSearch(UserId user, VideoId video, bool prefetchHit,
                                sim::SimTime requestTime) {
  if (!ctx_.isOnline(user)) return;
  abandonSearch(user);

  Search search;
  search.user = user;
  search.video = video;
  search.prefetchHit = prefetchHit;
  search.requestTime = requestTime;
  const std::uint64_t queryId = searches_.insert(search);
  activeSearch_[user.index()] = queryId;

  std::vector<UserId> neighbors = allNeighbors(nodes_[user.index()]);
  if (neighbors.empty()) {
    // First video of a session: straight to the server directory, exactly
    // as NetTube's join works.
    askServerDirectory(queryId);
    return;
  }
  // Per-hop fan-out is bounded by the per-overlay link budget (a node
  // queries one overlay's worth of neighbors, chosen at random), keeping
  // the flood cost comparable to SocialTube's N_l-bounded channel flood.
  if (neighbors.size() > ctx_.config().linksPerVideoOverlay) {
    ctx_.rng().shuffle(neighbors);
    neighbors.resize(ctx_.config().linksPerVideoOverlay);
  }
  for (const UserId n : neighbors) {
    if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
    ctx_.sendUser(user, n, [this, user, n, video, queryId] {
      floodQuery(user, n, video, queryId, ctx_.config().ttl);
    });
  }
  searches_.find(queryId)->deadline =
      ctx_.sim().schedule(ctx_.config().searchPhaseTimeout,
                          [this, queryId] { askServerDirectory(queryId); });
}

void NetTubeSystem::floodQuery(UserId origin, UserId at, VideoId video,
                               std::uint64_t queryId, int ttl) {
  Node& node = nodes_[at.index()];
  if (seenQuery(at, queryId)) return;
  if (node.cache.contains(video)) {
    ctx_.sendUser(at, origin,
                  [this, queryId, at] { onSearchHit(queryId, at); });
    return;
  }
  if (ttl <= 1) return;
  std::vector<UserId> neighbors = allNeighbors(node);
  if (neighbors.size() > ctx_.config().linksPerVideoOverlay) {
    ctx_.rng().shuffle(neighbors);
    neighbors.resize(ctx_.config().linksPerVideoOverlay);
  }
  for (const UserId n : neighbors) {
    if (n == origin) continue;
    if (!ctx_.neighborAllowed(at, n)) continue;  // breaker open at this hop
    ctx_.sendUser(at, n, [this, origin, n, video, queryId, ttl] {
      floodQuery(origin, n, video, queryId, ttl - 1);
    });
  }
}

void NetTubeSystem::onSearchHit(std::uint64_t queryId, UserId provider) {
  const Search* found = searches_.find(queryId);
  if (found == nullptr) return;
  if (!ctx_.isOnline(provider)) {
    // The responder died between answering and our receipt — suspicious.
    ctx_.reportNeighborFailure(found->user, provider);
    return;
  }
  ctx_.metrics().countChannelHit();  // peer hit via overlay flooding
  resolveSearch(queryId, provider, {provider});
}

void NetTubeSystem::askServerDirectory(std::uint64_t queryId) {
  Search* found = searches_.find(queryId);
  if (found == nullptr) return;
  Search& search = *found;
  ctx_.sim().cancel(search.deadline);
  search.deadline = sim::EventHandle{};
  const UserId user = search.user;
  const VideoId video = search.video;
  // The directory only helps when a node *first* requests a video (the
  // NetTube join: "the server directs it to connect to the providers in the
  // overlay of the video"). A node already inside overlays that missed its
  // 2-hop query "resorts to the server" — i.e. the server serves the video
  // itself. This is precisely the availability limitation §IV-C contrasts
  // with SocialTube.
  const bool joining = nodes_[user.index()].overlays.empty();

  ctx_.sendToServer(user, [this, user, video, queryId, joining] {
    std::vector<UserId> candidates;
    if (joining) {
      candidates = directory_.randomMembers(
          video, ctx_.config().linksPerVideoOverlay, user, ctx_.rng());
      // The directory only lists online holders, but double-check liveness.
      std::erase_if(candidates,
                    [this](UserId u) { return !ctx_.isOnline(u); });
      // Breaker filtering happens after the RNG draws so that a disabled
      // board leaves the random stream untouched.
      std::erase_if(candidates, [this, user](UserId u) {
        return !ctx_.neighborAllowed(user, u);
      });
    }
    ctx_.sendFromServer(user, [this, queryId, candidates] {
      const Search* search = searches_.find(queryId);
      if (search == nullptr) return;
      if (candidates.empty()) {
        ctx_.metrics().countServerFallback();
        ST_TRACE(ctx_.trace(), ctx_.sim().now(), kServerFallback,
                 search->user.value(), search->video.value(), 0);
        resolveSearch(queryId, UserId::invalid(), {});
        return;
      }
      ctx_.metrics().countCategoryHit();  // directory-mediated peer hit
      resolveSearch(queryId, candidates.front(), candidates);
    });
  });
}

void NetTubeSystem::resolveSearch(std::uint64_t queryId, UserId provider,
                                  const std::vector<UserId>& overlayPeers) {
  assert(searches_.find(queryId) != nullptr);
  const Search search = searches_.take(queryId);
  ctx_.sim().cancel(search.deadline);
  activeSearch_[search.user.index()] = 0;
  if (!ctx_.isOnline(search.user)) return;

  // Join the video's overlay by linking to the discovered holders.
  for (const UserId peer : overlayPeers) {
    if (!ctx_.neighborAllowed(search.user, peer)) continue;
    if (ctx_.isOnline(peer)) {
      connectOverlayLink(search.user, peer, search.video);
    }
  }
  if (provider.valid() && !ctx_.isOnline(provider)) {
    provider = UserId::invalid();
  }
  startDownload(search.user, search.video, provider, search.prefetchHit,
                search.requestTime);
}

void NetTubeSystem::startDownload(UserId user, VideoId video, UserId provider,
                                  bool prefetchHit, sim::SimTime requestTime) {
  vod::TransferManager::WatchRequest request;
  request.user = user;
  request.video = video;
  request.provider = provider;
  request.firstChunkCached = prefetchHit;
  request.requestTime = requestTime;
  // Swarming (extension): stripe across overlay neighbors holding the video.
  if (ctx_.config().bodySources > 1) {
    for (const UserId n : allNeighbors(nodes_[user.index()])) {
      if (request.extraProviders.size() + 1 >= ctx_.config().bodySources) {
        break;
      }
      if (n == provider) continue;
      if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
      if (ctx_.isOnline(n) && nodes_[n.index()].cache.contains(video)) {
        request.extraProviders.push_back(n);
      }
    }
  }
  if (!prefetchHit) {
    request.onPlaybackReady = [this, user, video](sim::SimTime delay,
                                                  bool timedOut) {
      notifyPlayback(user, video, delay, timedOut);
      if (!timedOut) prefetchFromNeighbors(user);
    };
  }
  request.onFinished = [this, user, video](bool complete) {
    if (complete) onVideoCached(user, video);
  };

  if (!provider.valid()) {
    ctx_.sendToServer(user, [this, request = std::move(request)] {
      if (!ctx_.isOnline(request.user)) return;
      transfers_.startWatch(request);
    });
    return;
  }
  transfers_.startWatch(std::move(request));
}

void NetTubeSystem::onVideoCached(UserId user, VideoId video) {
  nodes_[user.index()].cache.insert(video);
  // Report the new copy so the directory can hand this node out as a
  // provider (NetTube's per-video reporting overhead), and take a place in
  // the video's overlay: the server introduces current members and the node
  // links to them ("when a node finishes watching a video, it remains in
  // its overlay", §I). This is what makes NetTube's link count grow with
  // every video watched (Fig. 15/18).
  ctx_.sendToServer(user, [this, user, video] {
    if (!ctx_.isOnline(user)) return;
    std::vector<UserId> members = directory_.randomMembers(
        video, ctx_.config().linksPerVideoOverlay, user, ctx_.rng());
    directory_.add(user, video);
    ctx_.sendFromServer(user, [this, user, video,
                               members = std::move(members)] {
      for (const UserId member : members) {
        if (!ctx_.neighborAllowed(user, member)) continue;
        if (ctx_.isOnline(member)) {
          connectOverlayLink(user, member, video);
        }
      }
    });
  });
}

void NetTubeSystem::prefetchFromNeighbors(UserId user) {
  if (!ctx_.config().prefetchEnabled) return;
  if (!ctx_.isOnline(user)) return;
  Node& node = nodes_[user.index()];
  std::vector<UserId> neighbors = allNeighbors(node);
  std::erase_if(neighbors, [this](UserId n) { return !ctx_.isOnline(n); });
  if (neighbors.empty()) return;
  ctx_.rng().shuffle(neighbors);

  // NetTube prefetches *randomly* from neighbors' watched videos — the
  // strategy §IV-B argues is less accurate than popularity ranking.
  std::size_t issued = 0;
  for (const UserId n : neighbors) {
    if (issued >= ctx_.config().prefetchCount) break;
    if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
    const VideoId candidate =
        nodes_[n.index()].cache.randomVideo(ctx_.rng());
    if (!candidate.valid()) continue;
    if (node.cache.contains(candidate) || node.cache.hasFirstChunk(candidate)) {
      continue;
    }
    transfers_.startPrefetch(user, candidate, n,
                             [this, user, candidate](bool) {
                               if (ctx_.isOnline(user)) {
                                 nodes_[user.index()].cache.insertFirstChunk(
                                     candidate);
                               }
                             });
    ++issued;
  }
}

void NetTubeSystem::probeNeighbors(UserId user) {
  if (!ctx_.isOnline(user)) return;
  Node& node = nodes_[user.index()];
  // A live neighbor's probe response includes whether it still sits in this
  // overlay, so besides dead neighbors the sweep drops links the far end no
  // longer reciprocates (a lost goodbye, or a relogin that reset the peer's
  // overlays while our side still remembered the old link).
  for (auto it = node.overlays.begin(); it != node.overlays.end();) {
    const VideoId video = it->first;
    auto& links = it->second;
    for (std::size_t i = 0; i < links.size();) {
      ctx_.metrics().countProbe();
      const UserId n = links[i];
      ST_TRACE(ctx_.trace(), ctx_.sim().now(), kProbe, user.value(),
               n.value(), 0);
      bool stale = !ctx_.isOnline(n);
      if (!stale) {
        const Node& peer = nodes_[n.index()];
        const auto peerIt = peer.overlays.find(video);
        stale = peerIt == peer.overlays.end() ||
                !contains(peerIt->second, user);
      }
      if (stale) {
        ctx_.reportNeighborFailure(user, n);
        links.erase(links.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ctx_.reportNeighborSuccess(user, n);
      ++i;
    }
    it = links.empty() ? node.overlays.erase(it) : std::next(it);
  }
}

// --- invariant audit ----------------------------------------------------------

void NetTubeSystem::auditInvariants(vod::AuditReport& report) const {
  const std::size_t cap = ctx_.config().linksPerVideoOverlay;
  // Bounded caches evict without telling the server (the directory drifts by
  // design), so cache/directory agreement is only a contract when the cache
  // is unbounded — the paper's setting.
  const bool unboundedCache = ctx_.config().cacheCapacityVideos == 0;

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const UserId user{static_cast<std::uint32_t>(i)};
    const Node& node = nodes_[i];
    if (!ctx_.isOnline(user)) {
      if (!node.overlays.empty()) {
        report.violate("nt.offline_has_links", user.value(),
                       static_cast<std::uint32_t>(node.overlays.size()));
      }
    } else {
      for (const auto& [video, links] : node.overlays) {
        if (links.empty()) {
          report.violate("nt.empty_overlay", user.value(), video.value());
        }
        if (links.size() > cap) {
          report.violate("nt.overlay_cap", user.value(), video.value());
        }
        for (std::size_t j = 0; j < links.size(); ++j) {
          const UserId n = links[j];
          if (n == user) {
            report.violate("nt.self_link", user.value(), video.value());
            continue;
          }
          if (std::find(links.begin(),
                        links.begin() + static_cast<std::ptrdiff_t>(j), n) !=
              links.begin() + static_cast<std::ptrdiff_t>(j)) {
            report.violate("nt.dup_link", user.value(), n.value());
            continue;
          }
          if (!ctx_.isOnline(n)) {
            if (ctx_.offlineSince(n) < report.staleBefore()) {
              report.violate("nt.stale_link", user.value(), n.value());
            }
            continue;
          }
          const Node& peer = nodes_[n.index()];
          const auto peerIt = peer.overlays.find(video);
          if (peerIt == peer.overlays.end() ||
              !contains(peerIt->second, user)) {
            report.violateTransient("nt.asym_link", user.value(), n.value());
          }
        }
      }
    }
    for (const VideoId video : node.cache.videoList()) {
      if (!ctx_.isReleased(video)) {
        report.violate("nt.cache_unreleased", user.value(), video.value());
      }
    }
  }

  directory_.forEach([&](UserId member, VideoId video) {
    if (!ctx_.isOnline(member)) {
      report.violate("nt.directory_offline", member.value(), video.value());
    } else if (unboundedCache && !nodes_[member.index()].cache.contains(video)) {
      report.violate("nt.directory_uncached", member.value(), video.value());
    }
  });
}

}  // namespace st::baselines
