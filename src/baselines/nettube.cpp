#include "baselines/nettube.h"

#include <algorithm>
#include <cassert>

namespace st::baselines {

namespace {
bool contains(const std::vector<UserId>& list, UserId value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}

std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
  return static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
}

std::uint32_t lo32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }
std::uint32_t hi32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}

std::vector<UserId> toUsers(const std::vector<std::uint32_t>& raw) {
  std::vector<UserId> users;
  users.reserve(raw.size());
  for (const std::uint32_t value : raw) users.push_back(UserId{value});
  return users;
}

std::vector<std::uint32_t> fromUsers(const std::vector<UserId>& users) {
  std::vector<std::uint32_t> raw;
  raw.reserve(users.size());
  for (const UserId user : users) raw.push_back(user.value());
  return raw;
}
}  // namespace

NetTubeSystem::NetTubeSystem(vod::SystemContext& ctx,
                             vod::TransferManager& transfers)
    : ctx_(ctx),
      transfers_(transfers),
      queryDedup_(ctx.catalog().userCount()),
      activeSearch_(ctx.catalog().userCount(), 0) {
  overlays_.resize(ctx.catalog().userCount());
  probeTimer_.resize(ctx.catalog().userCount());
  cache_.reserve(ctx.catalog().userCount());
  for (std::size_t i = 0; i < ctx.catalog().userCount(); ++i) {
    cache_.emplace_back(ctx.config().cacheCapacityVideos,
                        ctx.config().prefetchCacheSlots);
  }
  transfers_.setClient(this);
  ctx_.sim().registerFactory(sim::Component::kNetTube, this);
}

NetTubeSystem::~NetTubeSystem() {
  if (ctx_.sim().factory(sim::Component::kNetTube) == this) {
    ctx_.sim().registerFactory(sim::Component::kNetTube, nullptr);
  }
}

sim::Callback NetTubeSystem::rebuild(const sim::EventTag& tag) {
  switch (tag.kind) {
    case kProbeEvent: {
      const UserId user{lo32(tag.a)};
      return [this, user] { probeNeighbors(user); };
    }
    case kDropLinksEvent: {
      const UserId at{tag.a32};
      const UserId from{lo32(tag.a)};
      return ctx_.wrapStage(tag, [this, at, from] { dropAllLinks(at, from); });
    }
    case kInventoryAtServer:
      return ctx_.wrapStage(tag, [this, tag] { inventoryAtServer(tag); });
    case kFloodHop: {
      const UserId at{tag.a32};
      const UserId origin{lo32(tag.a)};
      const VideoId video{lo32(tag.b)};
      const std::uint64_t queryId = tag.c;
      const int ttl = static_cast<int>(tag.d);
      return ctx_.wrapStage(tag, [this, origin, at, video, queryId, ttl] {
        floodQuery(origin, at, video, queryId, ttl);
      });
    }
    case kSearchHit: {
      const std::uint64_t queryId = tag.a;
      const UserId provider{lo32(tag.b)};
      return ctx_.wrapStage(
          tag, [this, queryId, provider] { onSearchHit(queryId, provider); });
    }
    case kAskDirectory: {
      const std::uint64_t queryId = tag.a;
      return [this, queryId] { askServerDirectory(queryId); };
    }
    case kDirectoryAtServer:
      return ctx_.wrapStage(tag, [this, tag] { directoryAtServer(tag); });
    case kDirectoryReply:
      // Carries a payload: the online check lives inside the handler so an
      // offline receiver still frees it (wrapStage would silently drop).
      return [this, tag] { applyDirectoryReply(tag); };
    case kServerWatch:
      return ctx_.wrapStage(tag, [this, tag] { serverWatch(tag); });
    case kCachedAtServer:
      return ctx_.wrapStage(tag, [this, tag] { cachedAtServer(tag); });
    case kCachedReply:
      return [this, tag] { applyCachedReply(tag); };  // payload, see above
    default:
      assert(false && "unknown NetTube event kind");
      return [] {};
  }
}

void NetTubeSystem::discard(const sim::EventTag& tag) {
  // A lost message must free the payload its closure would have consumed.
  switch (tag.kind) {
    case kInventoryAtServer:
    case kDirectoryReply:
    case kCachedReply:
      ctx_.freePayload(tag.b);
      break;
    case kServerWatch:
      ctx_.freePayload(tag.c);
      break;
    default:
      break;
  }
}

void NetTubeSystem::onRestored(const sim::EventTag& tag,
                               sim::EventHandle handle) {
  switch (tag.kind) {
    case kProbeEvent:
      probeTimer_[UserId{lo32(tag.a)}.index()] = handle;
      break;
    case kAskDirectory: {
      Search* search = searches_.find(tag.a);
      assert(search != nullptr && "deadline for a search not in the pool");
      search->deadline = handle;
      break;
    }
    default:
      break;
  }
}

vod::VodSystem::NodeStats NetTubeSystem::nodeStats(UserId user) const {
  // Per-overlay links are counted separately even when they join the same
  // pair of nodes — that surplus is the redundancy §IV-C calls out ("two
  // nodes may be connected by redundant links; each link corresponds to
  // one video overlay").
  NodeStats stats;
  std::vector<UserId> seen;
  for (const auto& [video, links] : overlays_[user.index()]) {
    stats.links += links.size();
    for (const UserId n : links) {
      if (contains(seen, n)) {
        ++stats.redundantLinks;  // pair already linked via another overlay
      } else {
        seen.push_back(n);
      }
    }
  }
  return stats;
}

std::vector<UserId> NetTubeSystem::allNeighbors(
    const Overlays& overlays) const {
  std::vector<UserId> result;
  for (const auto& [video, links] : overlays) {
    for (const UserId n : links) {
      if (!contains(result, n)) result.push_back(n);
    }
  }
  return result;
}

bool NetTubeSystem::seenQuery(UserId at, std::uint64_t queryId) {
  return queryDedup_.checkAndMark(at.index(), queryId);
}

void NetTubeSystem::abandonSearch(UserId user) {
  const std::uint64_t queryId = activeSearch_[user.index()];
  if (queryId == 0) return;
  if (Search* search = searches_.find(queryId)) {
    ctx_.sim().cancel(search->deadline);
    searches_.erase(queryId);
  }
  activeSearch_[user.index()] = 0;
}

void NetTubeSystem::connectOverlayLink(UserId a, UserId b, VideoId video) {
  if (a == b) return;
  // Look up before inserting: a refused connect must not leave an empty
  // overlay entry behind (it would distort overlayCount and the joining
  // heuristic in askServerDirectory).
  Overlays& na = overlays_[a.index()];
  Overlays& nb = overlays_[b.index()];
  const auto ia = na.find(video);
  if (ia != na.end() && contains(ia->second, b)) return;
  const std::size_t cap = ctx_.config().linksPerVideoOverlay;
  if (ia != na.end() && ia->second.size() >= cap) return;
  const auto ib = nb.find(video);
  if (ib != nb.end() && ib->second.size() >= cap) return;
  na[video].push_back(b);
  nb[video].push_back(a);
}

void NetTubeSystem::dropAllLinks(UserId holder, UserId gone) {
  Overlays& overlays = overlays_[holder.index()];
  for (auto it = overlays.begin(); it != overlays.end();) {
    auto& links = it->second;
    const auto linkIt = std::find(links.begin(), links.end(), gone);
    if (linkIt != links.end()) links.erase(linkIt);
    it = links.empty() ? overlays.erase(it) : std::next(it);
  }
}

void NetTubeSystem::onLogin(UserId user) {
  overlays_[user.index()].clear();
  // Report the cached inventory so the server can direct other nodes here
  // ("users need to report the changes of videos they watch", §IV-A).
  const vod::VideoCache& cache = cache_[user.index()];
  if (!cache.videoList().empty()) {
    vod::SystemContext::Payload payload;
    for (const VideoId video : cache.videoList()) {
      payload.u.push_back(video.value());
    }
    const std::uint64_t payloadId = ctx_.stashPayload(std::move(payload));
    ctx_.sendToServer(user,
                      sim::makeTag(sim::Component::kNetTube, kInventoryAtServer,
                                   user.value(), payloadId));
  }
  probeTimer_[user.index()] = ctx_.sim().schedulePeriodicTagged(
      ctx_.config().probeInterval,
      sim::makeTag(sim::Component::kNetTube, kProbeEvent, user.value()));
}

void NetTubeSystem::inventoryAtServer(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  if (!ctx_.isOnline(user)) {
    ctx_.freePayload(tag.b);
    return;
  }
  const vod::SystemContext::Payload payload = ctx_.takePayload(tag.b);
  for (const std::uint32_t raw : payload.u) directory_.add(user, VideoId{raw});
}

void NetTubeSystem::onLogout(UserId user, bool graceful) {
  ctx_.sim().cancel(probeTimer_[user.index()]);
  probeTimer_[user.index()] = sim::EventHandle{};

  abandonSearch(user);

  if (graceful) {
    for (const UserId n : allNeighbors(overlays_[user.index()])) {
      ctx_.sendUser(user, n,
                    sim::makeTag(sim::Component::kNetTube, kDropLinksEvent,
                                 user.value()));
    }
  }
  directory_.removeAll(user);
  overlays_[user.index()].clear();
}

void NetTubeSystem::requestVideo(UserId user, VideoId video) {
  const vod::VideoCache& cache = cache_[user.index()];
  const sim::SimTime requestTime = ctx_.sim().now();

  if (cache.contains(video)) {
    ctx_.metrics().countCacheHit();
    notifyPlayback(user, video, 0, false);
    prefetchFromNeighbors(user);
    return;
  }

  const bool prefetchHit = cache.hasFirstChunk(video);
  if (prefetchHit) {
    ctx_.metrics().countPrefetchHit();
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kPrefetchHit, user.value(),
             video.value(), 0);
    notifyPlayback(user, video, 0, false);
    prefetchFromNeighbors(user);
  }
  beginSearch(user, video, prefetchHit, requestTime);
}

void NetTubeSystem::beginSearch(UserId user, VideoId video, bool prefetchHit,
                                sim::SimTime requestTime) {
  if (!ctx_.isOnline(user)) return;
  abandonSearch(user);

  Search search;
  search.user = user;
  search.video = video;
  search.prefetchHit = prefetchHit;
  search.requestTime = requestTime;
  const std::uint64_t queryId = searches_.insert(search);
  activeSearch_[user.index()] = queryId;

  std::vector<UserId> neighbors = allNeighbors(overlays_[user.index()]);
  if (neighbors.empty()) {
    // First video of a session: straight to the server directory, exactly
    // as NetTube's join works.
    askServerDirectory(queryId);
    return;
  }
  // Per-hop fan-out is bounded by the per-overlay link budget (a node
  // queries one overlay's worth of neighbors, chosen at random), keeping
  // the flood cost comparable to SocialTube's N_l-bounded channel flood.
  if (neighbors.size() > ctx_.config().linksPerVideoOverlay) {
    ctx_.rng().shuffle(neighbors);
    neighbors.resize(ctx_.config().linksPerVideoOverlay);
  }
  for (const UserId n : neighbors) {
    if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
    ctx_.sendUser(user, n,
                  sim::makeTag(sim::Component::kNetTube, kFloodHop,
                               user.value(), video.value(), queryId,
                               static_cast<std::uint64_t>(ctx_.config().ttl)));
  }
  searches_.find(queryId)->deadline = ctx_.sim().scheduleTagged(
      ctx_.config().searchPhaseTimeout,
      sim::makeTag(sim::Component::kNetTube, kAskDirectory, queryId));
}

void NetTubeSystem::floodQuery(UserId origin, UserId at, VideoId video,
                               std::uint64_t queryId, int ttl) {
  if (seenQuery(at, queryId)) return;
  if (cache_[at.index()].contains(video)) {
    ctx_.sendUser(at, origin,
                  sim::makeTag(sim::Component::kNetTube, kSearchHit, queryId,
                               at.value()));
    return;
  }
  if (ttl <= 1) return;
  std::vector<UserId> neighbors = allNeighbors(overlays_[at.index()]);
  if (neighbors.size() > ctx_.config().linksPerVideoOverlay) {
    ctx_.rng().shuffle(neighbors);
    neighbors.resize(ctx_.config().linksPerVideoOverlay);
  }
  for (const UserId n : neighbors) {
    if (n == origin) continue;
    if (!ctx_.neighborAllowed(at, n)) continue;  // breaker open at this hop
    ctx_.sendUser(at, n,
                  sim::makeTag(sim::Component::kNetTube, kFloodHop,
                               origin.value(), video.value(), queryId,
                               static_cast<std::uint64_t>(ttl - 1)));
  }
}

void NetTubeSystem::onSearchHit(std::uint64_t queryId, UserId provider) {
  const Search* found = searches_.find(queryId);
  if (found == nullptr) return;
  if (!ctx_.isOnline(provider)) {
    // The responder died between answering and our receipt — suspicious.
    ctx_.reportNeighborFailure(found->user, provider);
    return;
  }
  ctx_.metrics().countChannelHit();  // peer hit via overlay flooding
  resolveSearch(queryId, provider, {provider});
}

void NetTubeSystem::askServerDirectory(std::uint64_t queryId) {
  Search* found = searches_.find(queryId);
  if (found == nullptr) return;
  Search& search = *found;
  ctx_.sim().cancel(search.deadline);
  search.deadline = sim::EventHandle{};
  const UserId user = search.user;
  const VideoId video = search.video;
  // The directory only helps when a node *first* requests a video (the
  // NetTube join: "the server directs it to connect to the providers in the
  // overlay of the video"). A node already inside overlays that missed its
  // 2-hop query "resorts to the server" — i.e. the server serves the video
  // itself. This is precisely the availability limitation §IV-C contrasts
  // with SocialTube.
  const bool joining = overlays_[user.index()].empty();

  ctx_.sendToServer(user,
                    sim::makeTag(sim::Component::kNetTube, kDirectoryAtServer,
                                 user.value(),
                                 pack(video.value(), joining ? 1 : 0),
                                 queryId));
}

void NetTubeSystem::directoryAtServer(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  const VideoId video{lo32(tag.b)};
  const bool joining = hi32(tag.b) != 0;
  const std::uint64_t queryId = tag.c;
  std::vector<UserId> candidates;
  if (joining) {
    candidates = directory_.randomMembers(
        video, ctx_.config().linksPerVideoOverlay, user, ctx_.rng());
    // The directory only lists online holders, but double-check liveness.
    std::erase_if(candidates, [this](UserId u) { return !ctx_.isOnline(u); });
    // Breaker filtering happens after the RNG draws so that a disabled
    // board leaves the random stream untouched.
    std::erase_if(candidates, [this, user](UserId u) {
      return !ctx_.neighborAllowed(user, u);
    });
  }
  vod::SystemContext::Payload payload;
  payload.u = fromUsers(candidates);
  const std::uint64_t payloadId = ctx_.stashPayload(std::move(payload));
  ctx_.sendFromServer(user, sim::makeTag(sim::Component::kNetTube,
                                         kDirectoryReply, queryId, payloadId));
}

void NetTubeSystem::applyDirectoryReply(const sim::EventTag& tag) {
  const UserId user{tag.a32};
  const std::uint64_t queryId = tag.a;
  if (!ctx_.isOnline(user)) {
    ctx_.freePayload(tag.b);
    return;
  }
  const vod::SystemContext::Payload payload = ctx_.takePayload(tag.b);
  const Search* search = searches_.find(queryId);
  if (search == nullptr) return;
  const std::vector<UserId> candidates = toUsers(payload.u);
  if (candidates.empty()) {
    ctx_.metrics().countServerFallback();
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kServerFallback,
             search->user.value(), search->video.value(), 0);
    resolveSearch(queryId, UserId::invalid(), {});
    return;
  }
  ctx_.metrics().countCategoryHit();  // directory-mediated peer hit
  resolveSearch(queryId, candidates.front(), candidates);
}

void NetTubeSystem::resolveSearch(std::uint64_t queryId, UserId provider,
                                  const std::vector<UserId>& overlayPeers) {
  assert(searches_.find(queryId) != nullptr);
  const Search search = searches_.take(queryId);
  ctx_.sim().cancel(search.deadline);
  activeSearch_[search.user.index()] = 0;
  if (!ctx_.isOnline(search.user)) return;

  // Join the video's overlay by linking to the discovered holders.
  for (const UserId peer : overlayPeers) {
    if (!ctx_.neighborAllowed(search.user, peer)) continue;
    if (ctx_.isOnline(peer)) {
      connectOverlayLink(search.user, peer, search.video);
    }
  }
  if (provider.valid() && !ctx_.isOnline(provider)) {
    provider = UserId::invalid();
  }
  startDownload(search.user, search.video, provider, search.prefetchHit,
                search.requestTime);
}

void NetTubeSystem::startDownload(UserId user, VideoId video, UserId provider,
                                  bool prefetchHit, sim::SimTime requestTime) {
  vod::TransferManager::WatchRequest request;
  request.user = user;
  request.video = video;
  request.provider = provider;
  request.firstChunkCached = prefetchHit;
  request.requestTime = requestTime;
  // Swarming (extension): stripe across overlay neighbors holding the video.
  if (ctx_.config().bodySources > 1) {
    for (const UserId n : allNeighbors(overlays_[user.index()])) {
      if (request.extraProviders.size() + 1 >= ctx_.config().bodySources) {
        break;
      }
      if (n == provider) continue;
      if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
      if (ctx_.isOnline(n) && cache_[n.index()].contains(video)) {
        request.extraProviders.push_back(n);
      }
    }
  }
  request.reportPlayback = !prefetchHit;

  if (!provider.valid()) {
    vod::SystemContext::Payload payload;
    payload.u = fromUsers(request.extraProviders);
    const std::uint64_t payloadId = ctx_.stashPayload(std::move(payload));
    ctx_.sendToServer(user,
                      sim::makeTag(sim::Component::kNetTube, kServerWatch,
                                   user.value(),
                                   pack(video.value(), prefetchHit ? 1 : 0),
                                   payloadId,
                                   static_cast<std::uint64_t>(requestTime)));
    return;
  }
  transfers_.startWatch(std::move(request));
}

void NetTubeSystem::serverWatch(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  if (!ctx_.isOnline(user)) {
    ctx_.freePayload(tag.c);
    return;
  }
  const vod::SystemContext::Payload payload = ctx_.takePayload(tag.c);
  const bool prefetchHit = hi32(tag.b) != 0;
  vod::TransferManager::WatchRequest request;
  request.user = user;
  request.video = VideoId{lo32(tag.b)};
  request.provider = UserId::invalid();
  request.firstChunkCached = prefetchHit;
  request.requestTime = static_cast<sim::SimTime>(tag.d);
  request.extraProviders = toUsers(payload.u);
  request.reportPlayback = !prefetchHit;
  transfers_.startWatch(std::move(request));
}

void NetTubeSystem::watchPlaybackReady(UserId user, VideoId video,
                                       sim::SimTime delay, bool timedOut) {
  notifyPlayback(user, video, delay, timedOut);
  if (!timedOut) prefetchFromNeighbors(user);
}

void NetTubeSystem::watchFinished(UserId user, VideoId video, bool complete) {
  if (complete) onVideoCached(user, video);
}

void NetTubeSystem::prefetchArrived(UserId user, VideoId video, bool) {
  if (ctx_.isOnline(user)) {
    cache_[user.index()].insertFirstChunk(video);
  }
}

void NetTubeSystem::onVideoCached(UserId user, VideoId video) {
  cache_[user.index()].insert(video);
  // Report the new copy so the directory can hand this node out as a
  // provider (NetTube's per-video reporting overhead), and take a place in
  // the video's overlay: the server introduces current members and the node
  // links to them ("when a node finishes watching a video, it remains in
  // its overlay", §I). This is what makes NetTube's link count grow with
  // every video watched (Fig. 15/18).
  ctx_.sendToServer(user,
                    sim::makeTag(sim::Component::kNetTube, kCachedAtServer,
                                 user.value(), video.value()));
}

void NetTubeSystem::cachedAtServer(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  const VideoId video{lo32(tag.b)};
  if (!ctx_.isOnline(user)) return;
  std::vector<UserId> members = directory_.randomMembers(
      video, ctx_.config().linksPerVideoOverlay, user, ctx_.rng());
  directory_.add(user, video);
  vod::SystemContext::Payload payload;
  payload.u = fromUsers(members);
  const std::uint64_t payloadId = ctx_.stashPayload(std::move(payload));
  ctx_.sendFromServer(user,
                      sim::makeTag(sim::Component::kNetTube, kCachedReply,
                                   video.value(), payloadId));
}

void NetTubeSystem::applyCachedReply(const sim::EventTag& tag) {
  const UserId user{tag.a32};
  const VideoId video{lo32(tag.a)};
  if (!ctx_.isOnline(user)) {
    ctx_.freePayload(tag.b);
    return;
  }
  const vod::SystemContext::Payload payload = ctx_.takePayload(tag.b);
  for (const UserId member : toUsers(payload.u)) {
    if (!ctx_.neighborAllowed(user, member)) continue;
    if (ctx_.isOnline(member)) {
      connectOverlayLink(user, member, video);
    }
  }
}

void NetTubeSystem::prefetchFromNeighbors(UserId user) {
  if (!ctx_.config().prefetchEnabled) return;
  if (!ctx_.isOnline(user)) return;
  const vod::VideoCache& cache = cache_[user.index()];
  std::vector<UserId> neighbors = allNeighbors(overlays_[user.index()]);
  std::erase_if(neighbors, [this](UserId n) { return !ctx_.isOnline(n); });
  if (neighbors.empty()) return;
  ctx_.rng().shuffle(neighbors);

  // NetTube prefetches *randomly* from neighbors' watched videos — the
  // strategy §IV-B argues is less accurate than popularity ranking.
  std::size_t issued = 0;
  for (const UserId n : neighbors) {
    if (issued >= ctx_.config().prefetchCount) break;
    if (!ctx_.neighborAllowed(user, n)) continue;  // breaker open
    const VideoId candidate = cache_[n.index()].randomVideo(ctx_.rng());
    if (!candidate.valid()) continue;
    if (cache.contains(candidate) || cache.hasFirstChunk(candidate)) {
      continue;
    }
    transfers_.startPrefetch(user, candidate, n);
    ++issued;
  }
}

void NetTubeSystem::probeNeighbors(UserId user) {
  if (!ctx_.isOnline(user)) return;
  Overlays& overlays = overlays_[user.index()];
  // A live neighbor's probe response includes whether it still sits in this
  // overlay, so besides dead neighbors the sweep drops links the far end no
  // longer reciprocates (a lost goodbye, or a relogin that reset the peer's
  // overlays while our side still remembered the old link).
  for (auto it = overlays.begin(); it != overlays.end();) {
    const VideoId video = it->first;
    auto& links = it->second;
    for (std::size_t i = 0; i < links.size();) {
      ctx_.metrics().countProbe();
      const UserId n = links[i];
      ST_TRACE(ctx_.trace(), ctx_.sim().now(), kProbe, user.value(),
               n.value(), 0);
      bool stale = !ctx_.isOnline(n);
      if (!stale) {
        const Overlays& peer = overlays_[n.index()];
        const auto peerIt = peer.find(video);
        stale = peerIt == peer.end() || !contains(peerIt->second, user);
      }
      if (stale) {
        ctx_.reportNeighborFailure(user, n);
        links.erase(links.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ctx_.reportNeighborSuccess(user, n);
      ++i;
    }
    it = links.empty() ? overlays.erase(it) : std::next(it);
  }
}

// --- invariant audit ----------------------------------------------------------

void NetTubeSystem::auditInvariants(vod::AuditReport& report) const {
  const std::size_t cap = ctx_.config().linksPerVideoOverlay;
  // Bounded caches evict without telling the server (the directory drifts by
  // design), so cache/directory agreement is only a contract when the cache
  // is unbounded — the paper's setting.
  const bool unboundedCache = ctx_.config().cacheCapacityVideos == 0;

  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    const UserId user{static_cast<std::uint32_t>(i)};
    const Overlays& overlays = overlays_[i];
    if (!ctx_.isOnline(user)) {
      if (!overlays.empty()) {
        report.violate("nt.offline_has_links", user.value(),
                       static_cast<std::uint32_t>(overlays.size()));
      }
    } else {
      for (const auto& [video, links] : overlays) {
        if (links.empty()) {
          report.violate("nt.empty_overlay", user.value(), video.value());
        }
        if (links.size() > cap) {
          report.violate("nt.overlay_cap", user.value(), video.value());
        }
        for (std::size_t j = 0; j < links.size(); ++j) {
          const UserId n = links[j];
          if (n == user) {
            report.violate("nt.self_link", user.value(), video.value());
            continue;
          }
          if (std::find(links.begin(),
                        links.begin() + static_cast<std::ptrdiff_t>(j), n) !=
              links.begin() + static_cast<std::ptrdiff_t>(j)) {
            report.violate("nt.dup_link", user.value(), n.value());
            continue;
          }
          if (!ctx_.isOnline(n)) {
            if (ctx_.offlineSince(n) < report.staleBefore()) {
              report.violate("nt.stale_link", user.value(), n.value());
            }
            continue;
          }
          const Overlays& peer = overlays_[n.index()];
          const auto peerIt = peer.find(video);
          if (peerIt == peer.end() || !contains(peerIt->second, user)) {
            report.violateTransient("nt.asym_link", user.value(), n.value());
          }
        }
      }
    }
    for (const VideoId video : cache_[i].videoList()) {
      if (!ctx_.isReleased(video)) {
        report.violate("nt.cache_unreleased", user.value(), video.value());
      }
    }
  }

  directory_.forEach([&](UserId member, VideoId video) {
    if (!ctx_.isOnline(member)) {
      report.violate("nt.directory_offline", member.value(), video.value());
    } else if (unboundedCache && !cache_[member.index()].contains(video)) {
      report.violate("nt.directory_uncached", member.value(), video.value());
    }
  });
}

// --- checkpoint/restore --------------------------------------------------------

void NetTubeSystem::saveState(snapshot::Writer& w) const {
  w.section(0x5454454e);  // "NETT"
  directory_.saveState(w);
  w.u64(overlays_.size());
  for (std::size_t i = 0; i < overlays_.size(); ++i) {
    w.u64(overlays_[i].size());
    for (const auto& [video, links] : overlays_[i]) {
      w.u32(video.value());
      w.u64(links.size());
      for (const UserId n : links) w.u32(n.value());
    }
    cache_[i].saveState(w);
  }
  w.u64(searches_.slotCount());
  searches_.visitSlots([&w](std::uint32_t, bool live, std::uint32_t gen,
                            std::uint32_t nextFree, const Search& search) {
    w.boolean(live);
    w.u32(gen);
    w.u32(nextFree);
    if (!live) return;
    w.u32(search.user.value());
    w.u32(search.video.value());
    w.boolean(search.prefetchHit);
    w.i64(search.requestTime);
  });
  w.u32(searches_.freeHead());
  w.u64(queryDedup_.marks().size());
  for (const std::uint64_t mark : queryDedup_.marks()) w.u64(mark);
  w.u64(activeSearch_.size());
  for (const std::uint64_t id : activeSearch_) w.u64(id);
}

bool NetTubeSystem::loadState(snapshot::Reader& r) {
  r.section(0x5454454e, "NetTube");
  if (!directory_.loadState(r)) return false;
  const std::size_t nodeCount = r.count(4);
  if (!r.ok() || nodeCount != overlays_.size()) {
    r.fail("NetTube node count mismatch");
    return false;
  }
  for (std::size_t node = 0; node < overlays_.size(); ++node) {
    Overlays& overlays = overlays_[node];
    overlays.clear();
    const std::size_t overlayCount = r.count(4 + 8);
    for (std::size_t i = 0; i < overlayCount; ++i) {
      const VideoId video{r.u32()};
      if (r.ok() && video.index() >= ctx_.catalog().videoCount()) {
        r.fail("NetTube overlay video out of range");
        return false;
      }
      std::vector<UserId>& links = overlays[video];
      const std::size_t linkCount = r.count(4);
      for (std::size_t j = 0; j < linkCount; ++j) {
        const UserId n{r.u32()};
        if (r.ok() && n.index() >= overlays_.size()) {
          r.fail("NetTube overlay link out of range");
          return false;
        }
        links.push_back(n);
      }
    }
    if (!cache_[node].loadState(r)) return false;
    probeTimer_[node] = sim::EventHandle{};
    if (!r.ok()) return false;
  }
  const std::size_t slots = r.count(1 + 4 + 4);
  searches_.beginRestore();
  for (std::size_t i = 0; i < slots; ++i) {
    const bool live = r.boolean();
    const std::uint32_t gen = r.u32();
    const std::uint32_t nextFree = r.u32();
    Search search;
    if (live) {
      search.user = UserId{r.u32()};
      search.video = VideoId{r.u32()};
      search.prefetchHit = r.boolean();
      search.requestTime = r.i64();
      if (r.ok() && search.user.index() >= overlays_.size()) {
        r.fail("NetTube search user out of range");
        return false;
      }
    }
    if (!r.ok()) return false;
    searches_.restoreSlot(live, gen, nextFree, std::move(search));
  }
  const std::uint32_t freeHead = r.u32();
  if (!r.ok() || !searches_.finishRestore(freeHead)) {
    r.fail("NetTube search pool free list corrupt");
    return false;
  }
  std::vector<std::uint64_t> marks(r.count(8));
  for (std::uint64_t& mark : marks) mark = r.u64();
  if (!r.ok() || !queryDedup_.restoreMarks(std::move(marks))) {
    r.fail("NetTube dedup mark count mismatch");
    return false;
  }
  const std::size_t activeCount = r.count(8);
  if (!r.ok() || activeCount != activeSearch_.size()) {
    r.fail("NetTube active-search count mismatch");
    return false;
  }
  for (std::uint64_t& id : activeSearch_) id = r.u64();
  return r.ok();
}

}  // namespace st::baselines
