#include "baselines/pavod.h"

#include <cassert>

namespace st::baselines {

namespace {
std::uint32_t lo32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }

std::vector<UserId> toUsers(const std::vector<std::uint32_t>& raw) {
  std::vector<UserId> users;
  users.reserve(raw.size());
  for (const std::uint32_t value : raw) users.push_back(UserId{value});
  return users;
}
}  // namespace

PaVodSystem::PaVodSystem(vod::SystemContext& ctx,
                         vod::TransferManager& transfers)
    : ctx_(ctx),
      transfers_(transfers),
      current_(ctx.catalog().userCount(), VideoId::invalid()),
      haveFull_(ctx.catalog().userCount(), 0),
      peerProvider_(ctx.catalog().userCount(), 0) {
  transfers_.setClient(this);
  ctx_.sim().registerFactory(sim::Component::kPaVod, this);
}

PaVodSystem::~PaVodSystem() {
  if (ctx_.sim().factory(sim::Component::kPaVod) == this) {
    ctx_.sim().registerFactory(sim::Component::kPaVod, nullptr);
  }
}

sim::Callback PaVodSystem::rebuild(const sim::EventTag& tag) {
  switch (tag.kind) {
    case kWatchersAtServer:
      return ctx_.wrapStage(tag, [this, tag] { watchersAtServer(tag); });
    case kWatchersReply:
      // Carries a payload: the online check lives inside the handler so an
      // offline receiver still frees it (wrapStage would silently drop).
      return [this, tag] { applyWatchersReply(tag); };
    case kProviderRegister:
      return ctx_.wrapStage(tag, [this, tag] { providerRegister(tag); });
    default:
      assert(false && "unknown PA-VoD event kind");
      return [] {};
  }
}

void PaVodSystem::discard(const sim::EventTag& tag) {
  // A lost watcher-list reply must free the candidate payload.
  if (tag.kind == kWatchersReply) ctx_.freePayload(tag.b);
}

vod::VodSystem::NodeStats PaVodSystem::nodeStats(UserId user) const {
  // PA-VoD maintains no overlay; the only "link" is an active peer download.
  return {.links = peerProvider_[user.index()] != 0 ? std::size_t{1}
                                                    : std::size_t{0}};
}

void PaVodSystem::onLogin(UserId user) {
  resetNode(user);
}

void PaVodSystem::onLogout(UserId user, bool graceful) {
  (void)graceful;  // no overlay state to say goodbye to
  watchers_.removeAll(user);
  resetNode(user);
}

void PaVodSystem::requestVideo(UserId user, VideoId video) {
  const sim::SimTime requestTime = ctx_.sim().now();
  // A new request supersedes the previous watch; the node stops providing
  // the old video.
  if (current_[user.index()].valid()) {
    watchers_.remove(user, current_[user.index()]);
  }
  current_[user.index()] = video;
  haveFull_[user.index()] = 0;
  peerProvider_[user.index()] = 0;

  // Ask the server for current watchers of this video.
  ctx_.sendToServer(user,
                    sim::makeTag(sim::Component::kPaVod, kWatchersAtServer,
                                 user.value(), video.value(), 0,
                                 static_cast<std::uint64_t>(requestTime)));
}

void PaVodSystem::watchersAtServer(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  const VideoId video{lo32(tag.b)};
  std::vector<UserId> candidates = watchers_.randomMembers(
      video, ctx_.config().watcherListSize, user, ctx_.rng());
  std::erase_if(candidates, [this](UserId u) { return !ctx_.isOnline(u); });
  // Breaker filtering happens after the RNG draws so that a disabled
  // board leaves the random stream untouched.
  std::erase_if(candidates, [this, user](UserId u) {
    return !ctx_.neighborAllowed(user, u);
  });
  const UserId provider =
      candidates.empty() ? UserId::invalid() : candidates.front();
  if (!provider.valid()) {
    ctx_.metrics().countServerFallback();
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kServerFallback, user.value(),
             video.value(), 0);
  }
  vod::SystemContext::Payload payload;
  payload.u.reserve(candidates.size());
  for (const UserId candidate : candidates) {
    payload.u.push_back(candidate.value());
  }
  const std::uint64_t payloadId = ctx_.stashPayload(std::move(payload));
  ctx_.sendFromServer(user,
                      sim::makeTag(sim::Component::kPaVod, kWatchersReply,
                                   video.value(), payloadId, provider.value(),
                                   tag.d));
}

void PaVodSystem::applyWatchersReply(const sim::EventTag& tag) {
  const UserId user{tag.a32};
  const VideoId video{lo32(tag.a)};
  if (!ctx_.isOnline(user)) {
    ctx_.freePayload(tag.b);
    return;
  }
  const vod::SystemContext::Payload payload = ctx_.takePayload(tag.b);
  if (current_[user.index()] != video) return;  // stale reply
  UserId source{lo32(tag.c)};
  if (source.valid() && !ctx_.isOnline(source)) {
    source = UserId::invalid();
  }
  if (source.valid()) ctx_.metrics().countChannelHit();
  startDownload(user, video, source, toUsers(payload.u),
                static_cast<sim::SimTime>(tag.d));
}

void PaVodSystem::startDownload(UserId user, VideoId video, UserId provider,
                                std::vector<UserId> extraProviders,
                                sim::SimTime requestTime) {
  peerProvider_[user.index()] = provider.valid() ? 1 : 0;

  vod::TransferManager::WatchRequest request;
  request.user = user;
  request.video = video;
  request.provider = provider;
  if (ctx_.config().bodySources > 1) {
    std::erase_if(extraProviders, [&](UserId u) {
      return u == provider || !ctx_.isOnline(u);
    });
    request.extraProviders = std::move(extraProviders);
  }
  request.requestTime = requestTime;

  if (!provider.valid()) {
    // The request is already at the server; it starts serving directly.
    transfers_.startWatch(std::move(request));
    return;
  }
  transfers_.startWatch(std::move(request));
}

void PaVodSystem::watchFinished(UserId user, VideoId video, bool complete) {
  if (!complete || current_[user.index()] != video) return;
  // Full copy in hand while still watching: become a provider.
  haveFull_[user.index()] = 1;
  ctx_.sendToServer(user,
                    sim::makeTag(sim::Component::kPaVod, kProviderRegister,
                                 user.value(), video.value()));
}

void PaVodSystem::providerRegister(const sim::EventTag& tag) {
  const UserId user{lo32(tag.a)};
  const VideoId video{lo32(tag.b)};
  if (ctx_.isOnline(user) && current_[user.index()] == video &&
      haveFull_[user.index()] != 0) {
    watchers_.add(user, video);
  }
}

void PaVodSystem::auditInvariants(vod::AuditReport& report) const {
  // The watcher directory is pruned synchronously on logout, playback end,
  // and video switch, so a stale advertisement is a bug, not churn noise.
  watchers_.forEach([&](UserId member, VideoId video) {
    if (!ctx_.isOnline(member)) {
      report.violate("pv.watcher_offline", member.value(), video.value());
      return;
    }
    if (current_[member.index()] != video) {
      report.violate("pv.watcher_wrong_video", member.value(), video.value());
    } else if (haveFull_[member.index()] == 0) {
      report.violate("pv.watcher_incomplete", member.value(), video.value());
    }
  });
}

void PaVodSystem::onPlaybackComplete(UserId user, VideoId video) {
  if (current_[user.index()] != video) return;
  // Playback over: the node no longer provides this video (the defining
  // PA-VoD limitation for short videos).
  watchers_.remove(user, video);
  resetNode(user);
}

// --- checkpoint/restore --------------------------------------------------------

void PaVodSystem::saveState(snapshot::Writer& w) const {
  w.section(0x44564150);  // "PAVD"
  watchers_.saveState(w);
  w.u64(current_.size());
  for (std::size_t i = 0; i < current_.size(); ++i) {
    w.u32(current_[i].value());
    w.boolean(haveFull_[i] != 0);
    w.boolean(peerProvider_[i] != 0);
  }
}

bool PaVodSystem::loadState(snapshot::Reader& r) {
  r.section(0x44564150, "PA-VoD");
  if (!watchers_.loadState(r)) return false;
  const std::size_t nodeCount = r.count(4 + 1 + 1);
  if (!r.ok() || nodeCount != current_.size()) {
    r.fail("PA-VoD node count mismatch");
    return false;
  }
  for (std::size_t i = 0; i < current_.size(); ++i) {
    current_[i] = VideoId{r.u32()};
    haveFull_[i] = r.boolean() ? 1 : 0;
    peerProvider_[i] = r.boolean() ? 1 : 0;
    if (r.ok() && current_[i].valid() &&
        current_[i].index() >= ctx_.catalog().videoCount()) {
      r.fail("PA-VoD current video out of range");
      return false;
    }
  }
  return r.ok();
}

}  // namespace st::baselines
