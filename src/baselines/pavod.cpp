#include "baselines/pavod.h"

#include <cassert>

namespace st::baselines {

PaVodSystem::PaVodSystem(vod::SystemContext& ctx,
                         vod::TransferManager& transfers)
    : ctx_(ctx), transfers_(transfers), nodes_(ctx.catalog().userCount()) {}

vod::VodSystem::NodeStats PaVodSystem::nodeStats(UserId user) const {
  // PA-VoD maintains no overlay; the only "link" is an active peer download.
  return {.links = nodes_[user.index()].peerProvider ? std::size_t{1}
                                                     : std::size_t{0}};
}

void PaVodSystem::onLogin(UserId user) {
  nodes_[user.index()] = Node{};
}

void PaVodSystem::onLogout(UserId user, bool graceful) {
  (void)graceful;  // no overlay state to say goodbye to
  watchers_.removeAll(user);
  nodes_[user.index()] = Node{};
}

void PaVodSystem::requestVideo(UserId user, VideoId video) {
  const sim::SimTime requestTime = ctx_.sim().now();
  Node& node = nodes_[user.index()];
  // A new request supersedes the previous watch; the node stops providing
  // the old video.
  if (node.current.valid()) watchers_.remove(user, node.current);
  node.current = video;
  node.haveFull = false;
  node.peerProvider = false;

  // Ask the server for current watchers of this video.
  ctx_.sendToServer(user, [this, user, video, requestTime] {
    std::vector<UserId> candidates = watchers_.randomMembers(
        video, ctx_.config().watcherListSize, user, ctx_.rng());
    std::erase_if(candidates,
                  [this](UserId u) { return !ctx_.isOnline(u); });
    // Breaker filtering happens after the RNG draws so that a disabled
    // board leaves the random stream untouched.
    std::erase_if(candidates, [this, user](UserId u) {
      return !ctx_.neighborAllowed(user, u);
    });
    const UserId provider =
        candidates.empty() ? UserId::invalid() : candidates.front();
    if (!provider.valid()) {
      ctx_.metrics().countServerFallback();
      ST_TRACE(ctx_.trace(), ctx_.sim().now(), kServerFallback, user.value(),
               video.value(), 0);
    }
    ctx_.sendFromServer(user, [this, user, video, provider, candidates,
                               requestTime] {
      if (nodes_[user.index()].current != video) return;  // stale reply
      UserId source = provider;
      if (source.valid() && !ctx_.isOnline(source)) {
        source = UserId::invalid();
      }
      if (source.valid()) ctx_.metrics().countChannelHit();
      startDownload(user, video, source, candidates, requestTime);
    });
  });
}

void PaVodSystem::startDownload(UserId user, VideoId video, UserId provider,
                                std::vector<UserId> extraProviders,
                                sim::SimTime requestTime) {
  nodes_[user.index()].peerProvider = provider.valid();

  vod::TransferManager::WatchRequest request;
  request.user = user;
  request.video = video;
  request.provider = provider;
  if (ctx_.config().bodySources > 1) {
    std::erase_if(extraProviders, [&](UserId u) {
      return u == provider || !ctx_.isOnline(u);
    });
    request.extraProviders = std::move(extraProviders);
  }
  request.requestTime = requestTime;
  request.onPlaybackReady = [this, user, video](sim::SimTime delay,
                                                bool timedOut) {
    notifyPlayback(user, video, delay, timedOut);
  };
  request.onFinished = [this, user, video](bool complete) {
    Node& node = nodes_[user.index()];
    if (!complete || node.current != video) return;
    // Full copy in hand while still watching: become a provider.
    node.haveFull = true;
    ctx_.sendToServer(user, [this, user, video] {
      if (ctx_.isOnline(user) && nodes_[user.index()].current == video &&
          nodes_[user.index()].haveFull) {
        watchers_.add(user, video);
      }
    });
  };

  if (!provider.valid()) {
    // The request is already at the server; it starts serving directly.
    transfers_.startWatch(std::move(request));
    return;
  }
  transfers_.startWatch(std::move(request));
}

void PaVodSystem::auditInvariants(vod::AuditReport& report) const {
  // The watcher directory is pruned synchronously on logout, playback end,
  // and video switch, so a stale advertisement is a bug, not churn noise.
  watchers_.forEach([&](UserId member, VideoId video) {
    if (!ctx_.isOnline(member)) {
      report.violate("pv.watcher_offline", member.value(), video.value());
      return;
    }
    const Node& node = nodes_[member.index()];
    if (node.current != video) {
      report.violate("pv.watcher_wrong_video", member.value(), video.value());
    } else if (!node.haveFull) {
      report.violate("pv.watcher_incomplete", member.value(), video.value());
    }
  });
}

void PaVodSystem::onPlaybackComplete(UserId user, VideoId video) {
  Node& node = nodes_[user.index()];
  if (node.current != video) return;
  // Playback over: the node no longer provides this video (the defining
  // PA-VoD limitation for short videos).
  watchers_.remove(user, video);
  node.current = VideoId::invalid();
  node.haveFull = false;
  node.peerProvider = false;
}

}  // namespace st::baselines
