#include "exp/multiseed.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/stats.h"

namespace st::exp {

namespace {
AggregateStat aggregate(const std::vector<double>& samples) {
  AggregateStat stat;
  RunningStats stats;
  for (const double x : samples) stats.add(x);
  stat.mean = stats.mean();
  stat.min = stats.min();
  stat.max = stats.max();
  stat.runs = stats.count();
  if (stats.count() > 1) {
    stat.stderrOfMean =
        stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  }
  return stat;
}
}  // namespace

MultiSeedSummary runSeeds(const ExperimentConfig& base, SystemKind system,
                          std::size_t seeds) {
  assert(seeds > 0);
  MultiSeedSummary summary;
  summary.system = systemName(system);

  std::vector<double> peer;
  std::vector<double> delayMean;
  std::vector<double> delayP99;
  std::vector<double> links;
  std::vector<double> rebuffer;
  for (std::size_t i = 0; i < seeds; ++i) {
    ExperimentConfig config = base;
    config.seed = base.seed + i;
    config.trace.seed = config.seed;
    ExperimentResult result = runExperiment(config, system);
    peer.push_back(result.aggregatePeerFraction());
    delayMean.push_back(result.startupDelayMs.mean());
    delayP99.push_back(result.startupDelayMs.percentile(99));
    links.push_back(result.linksByVideosWatched.empty()
                        ? 0.0
                        : result.linksByVideosWatched.back().mean());
    rebuffer.push_back(result.rebufferRate());
    summary.runs.push_back(std::move(result));
  }
  summary.peerFraction = aggregate(peer);
  summary.delayMeanMs = aggregate(delayMean);
  summary.delayP99Ms = aggregate(delayP99);
  summary.linksFinal = aggregate(links);
  summary.rebufferRate = aggregate(rebuffer);
  return summary;
}

std::string formatStat(const AggregateStat& stat) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%.3f +/- %.3f [%.3f, %.3f]",
                stat.mean, stat.stderrOfMean, stat.min, stat.max);
  return buffer;
}

}  // namespace st::exp
