#include "exp/multiseed.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace st::exp {

namespace {

AggregateStat aggregate(const std::vector<double>& samples) {
  AggregateStat stat;
  RunningStats stats;
  for (const double x : samples) stats.add(x);
  stat.mean = stats.mean();
  stat.min = stats.min();
  stat.max = stats.max();
  stat.runs = stats.count();
  if (stats.count() > 1) {
    stat.stderrOfMean =
        stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  }
  return stat;
}

double elapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

MultiSeedSummary runSeeds(const ExperimentConfig& base, SystemKind system,
                          std::size_t seeds, std::size_t threads) {
  assert(seeds > 0);
  if (threads == 0) threads = 1;
  MultiSeedSummary summary;
  summary.system = systemName(system);
  summary.threads = threads;

  // One slot per seed; workers only ever touch their own slot, so the runs
  // land in seed order no matter which finishes first.
  std::vector<ExperimentResult> slots(seeds);
  std::vector<double> runWallMs(seeds, 0.0);
  const auto batchStart = std::chrono::steady_clock::now();
  {
    // threads=1 passes a null pool: parallelFor degenerates to the plain
    // sequential loop on the calling thread.
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(std::min(threads, seeds));
    parallelFor(pool ? &*pool : nullptr, seeds, [&](std::size_t i) {
      ExperimentConfig config = base;
      config.seed = base.seed + i;
      config.trace.seed = config.seed;
      if (!config.obs.traceOut.empty()) {
        // Per-seed trace files: parallel replications must not clobber one
        // path.
        config.obs.traceOut += ".s" + std::to_string(config.seed);
      }
      const auto runStart = std::chrono::steady_clock::now();
      slots[i] = runExperiment(config, system);
      runWallMs[i] = elapsedMs(runStart);
    });
  }
  summary.wallMs = elapsedMs(batchStart);

  // Aggregation reads the slots in seed order — the identical code path for
  // every thread count, so aggregates are bitwise-equal to sequential.
  std::vector<double> peer;
  std::vector<double> delayMean;
  std::vector<double> delayP99;
  std::vector<double> links;
  std::vector<double> rebuffer;
  for (ExperimentResult& result : slots) {
    peer.push_back(result.aggregatePeerFraction());
    delayMean.push_back(result.startupDelayMs.mean());
    delayP99.push_back(result.startupDelayMs.percentile(99));
    links.push_back(result.linksByVideosWatched.empty()
                        ? 0.0
                        : result.linksByVideosWatched.back().mean());
    rebuffer.push_back(result.rebufferRate());
    summary.runs.push_back(std::move(result));
  }
  summary.peerFraction = aggregate(peer);
  summary.delayMeanMs = aggregate(delayMean);
  summary.delayP99Ms = aggregate(delayP99);
  summary.linksFinal = aggregate(links);
  summary.rebufferRate = aggregate(rebuffer);

  // Phase wall clocks, grouped by name in first-seen order (all runs execute
  // the same phases, so this is the first run's order).
  std::vector<std::pair<std::string, std::vector<double>>> phaseSamples;
  for (const ExperimentResult& result : summary.runs) {
    for (const obs::Phase& phase : result.phases) {
      auto it = std::find_if(
          phaseSamples.begin(), phaseSamples.end(),
          [&](const auto& entry) { return entry.first == phase.name; });
      if (it == phaseSamples.end()) {
        phaseSamples.emplace_back(phase.name, std::vector<double>{});
        it = std::prev(phaseSamples.end());
      }
      it->second.push_back(phase.ms);
    }
  }
  for (const auto& [name, samples] : phaseSamples) {
    summary.phaseWallMs.emplace_back(name, aggregate(samples));
  }

  summary.runWallMs = aggregate(runWallMs);
  double busyMs = 0.0;
  for (const double ms : runWallMs) busyMs += ms;
  if (summary.wallMs > 0.0) {
    summary.poolUtilization =
        busyMs / (summary.wallMs * static_cast<double>(threads));
  }
  return summary;
}

std::string formatStat(const AggregateStat& stat) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%.3f +/- %.3f [%.3f, %.3f]",
                stat.mean, stat.stderrOfMean, stat.min, stat.max);
  return buffer;
}

}  // namespace st::exp
