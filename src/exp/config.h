// Experiment presets: the PeerSim simulation (Table I) and the PlanetLab
// deployment (§V), plus proportional scaling for quick runs.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "trace/generator.h"
#include "vod/config.h"

namespace st::exp {

enum class Mode {
  kSimulation,  // clean network, Table I scale
  kPlanetLab,   // wide-area latencies, loss, 250 nodes
};

struct ExperimentConfig {
  std::uint64_t seed = 1;
  Mode mode = Mode::kSimulation;
  trace::GeneratorParams trace;
  vod::VodConfig vod;
  // Experiment horizon (Table I: 3 simulated days).
  sim::SimTime duration = 3 * sim::kDay;

  // Dynamic uploads (extension; see vod/releases.h). With perChannel > 0,
  // that many videos per channel are held back and published mid-run;
  // subscribers receive feed notifications and watch with the given
  // probability.
  struct Releases {
    std::size_t perChannel = 0;
    double windowStartFraction = 0.05;  // of the experiment duration
    double windowEndFraction = 0.60;
    double feedWatchProbability = 0.6;
  };
  Releases releases;

  // Structured event tracing (obs/event_trace.h). With traceOut non-empty,
  // runExperiment records protocol events into a ring buffer and flushes
  // them as JSONL to that path when the run ends. Multi-run helpers suffix
  // the path per system/seed so parallel runs never clobber each other.
  // Sampling keeps high-rate event kinds (chunk batches, probes) from
  // evicting rare ones; 1 keeps every event, 0 drops the kind.
  struct Observability {
    std::string traceOut;
    std::size_t traceCapacity = std::size_t{1} << 18;
    std::uint32_t chunkSampleEvery = 16;
    std::uint32_t probeSampleEvery = 8;
  };
  Observability obs;

  // Scripted fault injection + invariant auditing (src/fault/). `spec`
  // follows the fault/schedule.h grammar; "" or "none" injects nothing.
  // With auditInterval > 0 an InvariantChecker walks the overlay's
  // structural contract periodically; confirmed violations land in the
  // "invariant.violations" counter and on the event trace. graceHorizon 0
  // derives probeInterval + 1s (see fault/invariants.h).
  struct Faults {
    std::string spec;
    sim::SimTime auditInterval = 0;
    sim::SimTime graceHorizon = 0;
    [[nodiscard]] bool any() const {
      return (!spec.empty() && spec != "none") || auditInterval > 0;
    }
  };
  Faults faults;

  // Deterministic checkpoint/restore (src/snapshot/). With `out` non-empty
  // the run saves its complete state at sim-time `at` (0 = the horizon) and
  // keeps running. With `in` non-empty the run restores that file instead
  // of starting fresh and resumes from the saved clock; the workload shape
  // (seed, users, videos, system) must match the saving run, and faults /
  // audits absent from the snapshot may be layered on top (warm-start
  // forking — their absolute times should lie after the snapshot point).
  struct Snapshot {
    std::string out;
    sim::SimTime at = 0;
    std::string in;
  };
  Snapshot snapshot;

  // Community-sharded engine (DESIGN.md §13). count 0 runs the legacy
  // monolithic queue; a power-of-two count shards the event queue by
  // interest community (key = 1 + category; key 0 is the origin server's
  // root). The full stack shares RNG/metrics/flow state, so sharded
  // experiment runs execute on the serial canonical merge — bitwise equal
  // across any shard count and usable for snapshot portability — while
  // shard-safe workloads (bench/shard_bench) run the parallel windows.
  struct Shards {
    std::uint32_t count = 0;
    [[nodiscard]] bool any() const { return count > 0; }
  };
  Shards shards;

  // Table I defaults: 10,000 nodes, 10,121 videos, 545 channels, 25 sessions
  // of 10 videos, N_l = 5, N_h = 10, TTL = 2, 10-minute probes.
  static ExperimentConfig simulationDefaults(std::uint64_t seed = 1);

  // §V PlanetLab run: 250 globally distributed nodes, 6 categories x 10
  // channels x 40 videos, 50 sessions, 2-minute mean off time, wide-area
  // latency/loss, 5 Mbps server.
  static ExperimentConfig planetLabDefaults(std::uint64_t seed = 1);

  // Same shape at a different node count (sessions trimmed proportionally
  // for quick CI-sized runs). Keeps the 20 kbps/user server sizing rule.
  [[nodiscard]] ExperimentConfig scaledTo(std::size_t users,
                                          std::size_t sessions) const;
};

}  // namespace st::exp
