// Machine-readable experiment output: one CSV row per ExperimentResult.
// Used by the bench binaries' --csv flag so sweeps can be plotted without
// scraping console text.
//
// Columns are a fixed prefix of distribution statistics followed by one
// column per registered counter, taken from the exemplar result's (sorted)
// counter snapshot — a counter registered anywhere in the stack shows up
// here with no plumbing. All results written to one file must come from the
// same build/config so their counter sets line up.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"

namespace st::exp {

// The CSV header matching csvRow()'s columns for results shaped like
// `exemplar` (its counter names become the trailing columns).
[[nodiscard]] std::string csvHeader(const ExperimentResult& exemplar);

// One row, with an arbitrary caller-supplied label in the first column
// (e.g. the sweep point).
[[nodiscard]] std::string csvRow(const std::string& label,
                                 const ExperimentResult& result);

// Writes header + one row per result. Returns false on I/O failure (or an
// empty row set — there is no exemplar to shape the header from).
bool writeResultsCsv(const std::string& path,
                     const std::vector<std::pair<std::string,
                                                 ExperimentResult>>& rows);

}  // namespace st::exp
