// Machine-readable experiment output: one CSV row per ExperimentResult.
// Used by the bench binaries' --csv flag so sweeps can be plotted without
// scraping console text.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"

namespace st::exp {

// The CSV header matching csvRow()'s columns.
[[nodiscard]] std::string csvHeader();

// One row, with an arbitrary caller-supplied label in the first column
// (e.g. the sweep point).
[[nodiscard]] std::string csvRow(const std::string& label,
                                 const ExperimentResult& result);

// Writes header + one row per result. Returns false on I/O failure.
bool writeResultsCsv(const std::string& path,
                     const std::vector<std::pair<std::string,
                                                 ExperimentResult>>& rows);

}  // namespace st::exp
