#include "exp/config.h"

namespace st::exp {

namespace {
// Origin server uplink sizing: Table I prints "5 mbps", which matches the
// 250-node PlanetLab deployment at ~20 kbps per user but cannot feed the
// 10,000-node simulation at all; we apply the 20 kbps/user rule uniformly
// (see DESIGN.md §2 and EXPERIMENTS.md).
constexpr double kServerBpsPerUser = 20'000.0;
}  // namespace

ExperimentConfig ExperimentConfig::simulationDefaults(std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.mode = Mode::kSimulation;
  config.trace.seed = seed;
  // Table I values (see DESIGN.md for OCR resolutions).
  config.trace.numUsers = 10'000;
  config.trace.numVideos = 10'121;
  config.trace.numChannels = 545;
  config.vod.sessionsPerUser = 25;
  config.vod.videosPerSession = 10;
  config.vod.offTimeMeanSeconds = 8000.0;
  config.vod.serverUploadBps =
      kServerBpsPerUser * static_cast<double>(config.trace.numUsers);
  config.duration = 3 * sim::kDay;
  return config;
}

ExperimentConfig ExperimentConfig::planetLabDefaults(std::uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.mode = Mode::kPlanetLab;
  config.trace.seed = seed;
  config.trace.numUsers = 250;
  config.trace.numCategories = 6;
  config.trace.numChannels = 60;    // 6 categories x 10 channels
  config.trace.numVideos = 2'400;   // 40 per channel
  config.trace.maxInterests = 6;
  config.vod.sessionsPerUser = 50;
  config.vod.videosPerSession = 10;
  config.vod.offTimeMeanSeconds = 120.0;  // 2-minute mean (as printed)
  config.vod.loginStaggerSeconds = 600.0;
  config.vod.serverUploadBps = 5'000'000.0;  // Table I, as printed
  config.duration = 3 * sim::kDay;
  return config;
}

ExperimentConfig ExperimentConfig::scaledTo(std::size_t users,
                                            std::size_t sessions) const {
  ExperimentConfig scaled = *this;
  scaled.trace = trace.scaledTo(users);
  scaled.vod.sessionsPerUser = sessions;
  scaled.vod.serverUploadBps =
      kServerBpsPerUser * static_cast<double>(users);
  return scaled;
}

}  // namespace st::exp
