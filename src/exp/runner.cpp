#include "exp/runner.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <utility>

#include "baselines/nettube.h"
#include "baselines/pavod.h"
#include "core/socialtube.h"
#include "fault/injector.h"
#include "fault/invariants.h"
#include "fault/schedule.h"
#include "net/latency.h"
#include "net/network.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "snapshot/snapshot.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "vod/context.h"
#include "vod/library.h"
#include "vod/metrics.h"
#include "vod/releases.h"
#include "vod/selector.h"
#include "vod/session.h"
#include "vod/system.h"
#include "vod/transfer.h"

namespace st::exp {

const char* systemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSocialTube: return "SocialTube";
    case SystemKind::kNetTube: return "NetTube";
    case SystemKind::kPaVod: return "PA-VoD";
  }
  return "?";
}

namespace {

std::unique_ptr<net::LatencyModel> makeLatency(const ExperimentConfig& config) {
  if (config.mode == Mode::kPlanetLab) {
    // Wide-area: heavy-tailed RTTs and 1% message loss, standing in for the
    // paper's "unstable network environment on PlanetLab".
    return std::make_unique<net::WideAreaLatencyModel>(
        config.seed, /*medianMs=*/80.0, /*sigma=*/0.6, /*lossRate=*/0.01);
  }
  return std::make_unique<net::CleanLatencyModel>(
      config.seed, 10 * sim::kMillisecond, 80 * sim::kMillisecond);
}

std::unique_ptr<vod::VodSystem> makeSystem(SystemKind kind,
                                           vod::SystemContext& ctx,
                                           vod::TransferManager& transfers) {
  switch (kind) {
    case SystemKind::kSocialTube:
      return std::make_unique<core::SocialTubeSystem>(ctx, transfers);
    case SystemKind::kNetTube:
      return std::make_unique<baselines::NetTubeSystem>(ctx, transfers);
    case SystemKind::kPaVod:
      return std::make_unique<baselines::PaVodSystem>(ctx, transfers);
  }
  return nullptr;
}

obs::EventTrace::Options traceOptions(const ExperimentConfig& config) {
  obs::EventTrace::Options options;
  options.capacity = config.obs.traceCapacity;
  options.sampleEvery[static_cast<std::size_t>(obs::EventKind::kChunk)] =
      config.obs.chunkSampleEvery;
  options.sampleEvery[static_cast<std::size_t>(obs::EventKind::kProbe)] =
      config.obs.probeSampleEvery;
  return options;
}

// Samples the origin server's membership-state size every 30 simulated
// minutes (the §IV-A server-state comparison). Tagged (Component::kRunner)
// so the pending sample event snapshots; the accumulated series rides in
// the snapshot's RUNR section via Participants::serverSample.
class ServerSampler final : public sim::EventFactory {
 public:
  static constexpr std::uint8_t kSampleEvent = 0;

  ServerSampler(sim::Simulator& sim, vod::VodSystem& system)
      : sim_(sim), system_(system) {
    sim_.registerFactory(sim::Component::kRunner, this);
  }
  ~ServerSampler() override {
    if (sim_.factory(sim::Component::kRunner) == this) {
      sim_.registerFactory(sim::Component::kRunner, nullptr);
    }
  }

  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override {
    (void)tag;
    assert(tag.kind == kSampleEvent && "unknown runner event kind");
    return [this] {
      stats_.add(
          static_cast<double>(system_.statsSnapshot().serverRegistrations));
    };
  }

  void arm() {
    sim_.schedulePeriodicTagged(
        30 * sim::kMinute, sim::makeTag(sim::Component::kRunner, kSampleEvent));
  }

  [[nodiscard]] RunningStats& stats() { return stats_; }

 private:
  sim::Simulator& sim_;
  vod::VodSystem& system_;
  RunningStats stats_;
};

// Counts admission-control rejections at the origin server and mirrors each
// one into the event trace. RAII FlowObserver: registers in the constructor,
// removes itself before the network dies — no captured-closure state inside
// FlowNetwork, so a mid-run snapshot never has to reason about it.
class ShedRecorder final : public net::FlowObserver {
 public:
  ShedRecorder(net::FlowNetwork& flows, obs::Counter& shed,
               const vod::SystemContext& ctx, obs::EventTrace* trace,
               const sim::Simulator& simulator)
      : flows_(flows), shed_(shed), ctx_(ctx), trace_(trace),
        simulator_(simulator) {
    flows_.addObserver(this);
  }
  ~ShedRecorder() override { flows_.removeObserver(this); }
  ShedRecorder(const ShedRecorder&) = delete;
  ShedRecorder& operator=(const ShedRecorder&) = delete;

  void onFlowShed(EndpointId src, EndpointId dst,
                  net::FlowClass flowClass) override {
    if (src == ctx_.serverEndpoint()) shed_.inc();
    ST_TRACE(trace_, simulator_.now(), kShed, dst.value(), src.value(),
             static_cast<std::uint64_t>(flowClass));
#if !ST_TRACE_ENABLED
    (void)dst;
    (void)flowClass;
#endif
  }

 private:
  net::FlowNetwork& flows_;
  obs::Counter& shed_;
  const vod::SystemContext& ctx_;
  obs::EventTrace* trace_;
  const sim::Simulator& simulator_;
};

}  // namespace

ExperimentResult runExperiment(const ExperimentConfig& config,
                               SystemKind kind,
                               const trace::Catalog* catalog,
                               obs::EventTrace* trace) {
  obs::PhaseProfiler profiler;

  trace::Catalog owned;
  if (catalog == nullptr) {
    const auto scope = profiler.scope("trace_gen");
    owned = trace::generateTrace(config.trace);
    catalog = &owned;
  }

  // Run-local sink when the config asks for a trace file and the caller did
  // not supply a sink of their own.
  std::optional<obs::EventTrace> ownedTrace;
  if (trace == nullptr && !config.obs.traceOut.empty()) {
    ownedTrace.emplace(traceOptions(config));
    trace = &*ownedTrace;
  }

  auto setupScope = std::optional(profiler.scope("setup"));
  sim::Simulator simulator;
  // The latency model is built before the network facade so its delay floor
  // can seed the shard plan's lookahead; configureShards must run on the
  // pristine simulator, before anything below schedules an event.
  auto latency = makeLatency(config);
  if (config.shards.any()) {
    sim::ShardPlan plan;
    plan.keyCount = static_cast<std::uint32_t>(catalog->categoryCount()) + 1;
    plan.shardCount = config.shards.count;
    plan.lookahead = latency->minDelay();
    std::string error;
    if (!simulator.configureShards(plan, &error)) {
      std::fprintf(stderr, "--shards %u: %s\n", config.shards.count,
                   error.c_str());
      std::abort();
    }
    // The full experiment stack shares one protocol RNG, one metrics sink,
    // and one flow solver across communities, so sharded runs execute on
    // the serial canonical merge (bitwise equal at every shard count);
    // parallel lookahead windows are for shard-safe workloads.
    simulator.setWorkers(1);
  }
  net::Network network(simulator, std::move(latency), config.seed);
  vod::VideoLibrary library(*catalog, config.vod);
  vod::Metrics metrics(catalog->userCount(), config.vod.videosPerSession);

  // One registry per run: Metrics owns it and seeds the protocol counters;
  // every other layer registers its scalars here and the final snapshot is
  // the run's complete counter set.
  obs::Registry& registry = metrics.registry();
  simulator.registerInto(registry);
  network.registerInto(registry);

  vod::SystemContext ctx(simulator, network, *catalog, library, config.vod,
                         metrics, config.seed);
  ctx.setTrace(trace);
  vod::TransferManager transfers(ctx);
  const std::unique_ptr<vod::VodSystem> system =
      makeSystem(kind, ctx, transfers);
  vod::VideoSelector selector(*catalog, config.vod, config.seed);
  selector.attachContext(ctx);
  vod::SessionDriver driver(ctx, *system, transfers, selector, config.seed);

  // Scripted faults + invariant auditing, if configured. Both register
  // their counters only when active, so fault-free runs keep the seed
  // counter set (and CSV columns) unchanged.
  const bool restoring = !config.snapshot.in.empty();

  std::optional<fault::Injector> injector;
  std::optional<fault::InvariantChecker> checker;
  if (config.faults.any()) {
    fault::Schedule schedule;
    std::string error;
    if (!fault::Schedule::parse(config.faults.spec, &schedule, &error)) {
      std::fprintf(stderr, "invalid --faults spec: %s\n", error.c_str());
      std::abort();
    }
    injector.emplace(ctx, std::move(schedule), config.seed);
    injector->setCrashHandler(
        [&driver](UserId user) { driver.crashUser(user); });
    if (!restoring) injector->arm();
    if (config.faults.auditInterval > 0) {
      fault::CheckerOptions options;
      options.auditInterval = config.faults.auditInterval;
      options.graceHorizon = config.faults.graceHorizon;
      // Confirmed violations are exceptional: besides the counter and the
      // kViolation trace event, name the broken rule on stderr so a CLI
      // run surfaces *what* broke, not just how often.
      options.onViolation = [&simulator](const vod::AuditViolation& v) {
        std::fprintf(stderr,
                     "invariant violation t=%lld rule=%s actor=%u subject=%u\n",
                     static_cast<long long>(simulator.now()), v.rule.c_str(),
                     v.actor, v.subject);
      };
      checker.emplace(ctx, *system, transfers, std::move(options));
      if (!restoring) checker->arm();
    }
  }

  // Dynamic uploads, if configured: hold some videos back and publish them
  // during the run, feeding the channels' subscribers.
  vod::ReleaseManager releases(ctx, selector,
                               config.releases.feedWatchProbability,
                               config.seed);
  if (config.releases.perChannel > 0 && !restoring) {
    const auto windowStart = static_cast<sim::SimTime>(
        config.releases.windowStartFraction *
        static_cast<double>(config.duration));
    const auto windowEnd = static_cast<sim::SimTime>(
        config.releases.windowEndFraction *
        static_cast<double>(config.duration));
    releases.schedule(vod::ReleaseManager::uniformPlan(
        *catalog, config.releases.perChannel, windowStart, windowEnd,
        config.seed));
  }

  registry.addGauge("server_bytes", [&network, &ctx] {
    return network.flows().bytesUploaded(ctx.serverEndpoint());
  });
  registry.addGauge("sessions_completed",
                    [&driver] { return driver.sessionsCompleted(); });
  registry.addGauge("releases_fired",
                    [&releases] { return releases.releasesFired(); });
  registry.addGauge("feed_notifications",
                    [&releases] { return releases.feedNotifications(); });
  registry.addGauge("feed_watches",
                    [&selector] { return selector.feedWatches(); });

  // Overload-control observability. Registered only when a knob is active so
  // overload-off runs keep the seed counter set (and CSV columns) unchanged —
  // the same pattern as Faults above.
  std::optional<ShedRecorder> shedRecorder;
  if (config.vod.overload.any()) {
    shedRecorder.emplace(network.flows(), registry.counter("server.shed"), ctx,
                         trace, simulator);
    registry.addGauge("prefetch.throttled",
                      [&metrics] { return metrics.prefetchThrottled(); });
    registry.addGauge("breaker.opened",
                      [&ctx] { return ctx.breakers().opened(); });
    registry.addGauge("breaker.closed",
                      [&ctx] { return ctx.breakers().closed(); });
    registry.addGauge("breaker.half_open",
                      [&ctx] { return ctx.breakers().halfOpened(); });
    registry.addGauge("breaker.open",
                      [&ctx] { return ctx.breakers().openNow(); });
    registry.addGauge("slo.stall_count",
                      [&metrics] { return metrics.stallCount(); });
    registry.addGauge("slo.stall_ms", [&metrics] {
      return static_cast<std::uint64_t>(metrics.stallSeconds() * 1000.0);
    });
    // Fixed-point parts-per-million so the integer registry can carry the
    // ratio the slo knob targets.
    registry.addGauge("slo.rebuffer_ratio_ppm", [&metrics] {
      return static_cast<std::uint64_t>(metrics.rebufferRatio() * 1e6);
    });
    registry.addGauge("slo.startup_p99_ms", [&metrics] {
      return static_cast<std::uint64_t>(
          metrics.startupDelayMs().percentile(99));
    });
    const double sloTarget = config.vod.overload.rebufferSloRatio;
    registry.addGauge("slo.rebuffer_within_target", [&metrics, sloTarget] {
      return metrics.rebufferRatio() <= sloTarget ? 1 : 0;
    });
  }

  // Snapshot size telemetry. Registered only when checkpointing is active so
  // snapshot-free runs keep the seed counter set unchanged. A differential
  // pair stays counter-comparable because the restoring arm reports the size
  // of the file image it read — the very file (and byte count) the saving
  // arm wrote.
  std::uint64_t snapshotBytes = 0;
  if (!config.snapshot.out.empty() || !config.snapshot.in.empty()) {
    registry.addGauge("snapshot.bytes",
                      [&snapshotBytes] { return snapshotBytes; });
  }

  ServerSampler sampler(simulator, *system);

  snapshot::Participants participants;
  participants.sim = &simulator;
  participants.network = &network;
  participants.ctx = &ctx;
  participants.metrics = &metrics;
  participants.transfers = &transfers;
  switch (kind) {
    case SystemKind::kSocialTube:
      participants.socialTube =
          static_cast<core::SocialTubeSystem*>(system.get());
      break;
    case SystemKind::kNetTube:
      participants.netTube =
          static_cast<baselines::NetTubeSystem*>(system.get());
      break;
    case SystemKind::kPaVod:
      participants.paVod = static_cast<baselines::PaVodSystem*>(system.get());
      break;
  }
  participants.driver = &driver;
  participants.selector = &selector;
  participants.releases = &releases;
  participants.injector = injector ? &*injector : nullptr;
  participants.checker = checker ? &*checker : nullptr;
  participants.trace = trace;
  participants.serverSample = &sampler.stats();
  const snapshot::Compat compat{config.seed, catalog->userCount(),
                                catalog->videoCount()};

  if (restoring) {
    // Every pending event comes from the file; the fresh-start scheduling
    // above (driver.start, arm calls, release plan) was skipped. Machinery
    // configured now but absent from the snapshot is armed here on top of
    // the warmed state (fault/overload scenario forking).
    snapshot::RestoreInfo info;
    std::string error;
    if (!snapshot::restore(config.snapshot.in, participants, compat, &error,
                           &info, &snapshotBytes)) {
      std::fprintf(stderr, "--snapshot-in %s: %s\n",
                   config.snapshot.in.c_str(), error.c_str());
      std::abort();
    }
    if (injector && !info.injectorLoaded) injector->arm();
    if (checker && !info.checkerLoaded) checker->arm();
  } else {
    driver.start();
    sampler.arm();
  }
  if (!config.snapshot.out.empty()) {
    const sim::SimTime saveAt =
        config.snapshot.at > 0 ? config.snapshot.at : config.duration;
    // Untagged on purpose: by the time any snapshot is taken this event has
    // already fired (it IS the save), so it is never itself pending state.
    simulator.scheduleAt(
        saveAt, [&participants, &compat, &config, &snapshotBytes] {
          std::string error;
          if (!snapshot::save(config.snapshot.out, participants, compat,
                              &error, &snapshotBytes)) {
            std::fprintf(stderr, "--snapshot-out %s: %s\n",
                         config.snapshot.out.c_str(), error.c_str());
            std::abort();
          }
          std::fprintf(stderr, "snapshot %s: %llu bytes\n",
                       config.snapshot.out.c_str(),
                       static_cast<unsigned long long>(snapshotBytes));
        });
  }
  setupScope.reset();

  {
    const auto scope = profiler.scope("event_loop");
    simulator.runUntil(config.duration);
  }
  if (simulator.sharded()) {
    // Per-shard engine telemetry rides in the phase report (wall-clock
    // territory, excluded from the determinism guarantee): one phase per
    // shard whose call count is the events that shard fired, plus the
    // barrier-window and cross-shard tallies.
    for (std::uint32_t s = 0; s < simulator.shardCount(); ++s) {
      profiler.record("shard" + std::to_string(s) + "_events", 0.0,
                      simulator.shardEventsFired(s));
    }
    profiler.record("shard_windows", 0.0, simulator.windowsRun());
    profiler.record("shard_cross_posts", 0.0, simulator.crossShardPosts());
  }

  auto extractScope = std::optional(profiler.scope("extract"));
  ExperimentResult result;
  result.system = std::string(system->name());
  result.mode = config.mode;
  result.seed = config.seed;
  result.normalizedPeerBandwidth = metrics.normalizedPeerBandwidth();
  result.startupDelayMs = metrics.startupDelayMs();
  result.linksByVideosWatched = metrics.linksByVideosWatched();
  result.redundantLinks = metrics.redundantLinks();
  result.serverRegistrations = sampler.stats();
  {
    std::vector<double> uploads;
    uploads.reserve(catalog->userCount());
    for (std::size_t i = 0; i < catalog->userCount(); ++i) {
      uploads.push_back(static_cast<double>(network.flows().bytesUploaded(
          EndpointId{static_cast<std::uint32_t>(i)})));
    }
    result.uploadGini = giniCoefficient(uploads);
  }
  {
    snapshot::Writer w;
    if (participants.socialTube != nullptr) {
      participants.socialTube->saveState(w);
    } else if (participants.netTube != nullptr) {
      participants.netTube->saveState(w);
    } else {
      participants.paVod->saveState(w);
    }
    result.overlayFingerprint =
        snapshot::crc32(w.body().data(), w.body().size());
  }
  // The generic snapshot replaces the old field-by-field copy: every
  // counter and gauge registered above lands here by name.
  result.counters = registry.snapshot();
  if (ownedTrace) ownedTrace->writeJsonl(config.obs.traceOut);
  extractScope.reset();

  result.phases = profiler.phases();
  return result;
}

std::vector<ExperimentResult> runAllSystems(const ExperimentConfig& config,
                                            std::size_t threads) {
  const trace::Catalog catalog = trace::generateTrace(config.trace);
  constexpr SystemKind kOrder[] = {SystemKind::kPaVod,
                                   SystemKind::kSocialTube,
                                   SystemKind::kNetTube};
  constexpr std::size_t kCount = std::size(kOrder);
  // Each run owns its whole simulator/metrics stack and only reads the
  // shared catalog, so the three systems can run concurrently; fixed result
  // slots keep the output order stable.
  std::vector<ExperimentResult> results(kCount);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(std::min(threads, kCount));
  parallelFor(pool ? &*pool : nullptr, kCount, [&](std::size_t i) {
    ExperimentConfig runConfig = config;
    if (!runConfig.obs.traceOut.empty()) {
      // Per-system trace files: parallel runs must not clobber one path.
      runConfig.obs.traceOut += ".";
      runConfig.obs.traceOut += systemName(kOrder[i]);
    }
    // Snapshots are per-system for the same reason — and restore refuses a
    // file saved by a different system, so the suffix keeps a three-system
    // sweep's save/restore pairs lined up automatically.
    if (!runConfig.snapshot.out.empty()) {
      runConfig.snapshot.out += ".";
      runConfig.snapshot.out += systemName(kOrder[i]);
    }
    if (!runConfig.snapshot.in.empty()) {
      runConfig.snapshot.in += ".";
      runConfig.snapshot.in += systemName(kOrder[i]);
    }
    results[i] = runExperiment(runConfig, kOrder[i], &catalog);
  });
  return results;
}

}  // namespace st::exp
