#include "exp/runner.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <optional>

#include "baselines/nettube.h"
#include "baselines/pavod.h"
#include "core/socialtube.h"
#include "net/latency.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "vod/context.h"
#include "vod/library.h"
#include "vod/metrics.h"
#include "vod/releases.h"
#include "vod/selector.h"
#include "vod/session.h"
#include "vod/system.h"
#include "vod/transfer.h"

namespace st::exp {

const char* systemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSocialTube: return "SocialTube";
    case SystemKind::kNetTube: return "NetTube";
    case SystemKind::kPaVod: return "PA-VoD";
  }
  return "?";
}

namespace {

std::unique_ptr<net::LatencyModel> makeLatency(const ExperimentConfig& config) {
  if (config.mode == Mode::kPlanetLab) {
    // Wide-area: heavy-tailed RTTs and 1% message loss, standing in for the
    // paper's "unstable network environment on PlanetLab".
    return std::make_unique<net::WideAreaLatencyModel>(
        config.seed, /*medianMs=*/80.0, /*sigma=*/0.6, /*lossRate=*/0.01);
  }
  return std::make_unique<net::CleanLatencyModel>(
      config.seed, 10 * sim::kMillisecond, 80 * sim::kMillisecond);
}

std::unique_ptr<vod::VodSystem> makeSystem(SystemKind kind,
                                           vod::SystemContext& ctx,
                                           vod::TransferManager& transfers) {
  switch (kind) {
    case SystemKind::kSocialTube:
      return std::make_unique<core::SocialTubeSystem>(ctx, transfers);
    case SystemKind::kNetTube:
      return std::make_unique<baselines::NetTubeSystem>(ctx, transfers);
    case SystemKind::kPaVod:
      return std::make_unique<baselines::PaVodSystem>(ctx, transfers);
  }
  return nullptr;
}

}  // namespace

ExperimentResult runExperiment(const ExperimentConfig& config,
                               SystemKind kind,
                               const trace::Catalog* catalog) {
  trace::Catalog owned;
  if (catalog == nullptr) {
    owned = trace::generateTrace(config.trace);
    catalog = &owned;
  }

  sim::Simulator simulator;
  net::Network network(simulator, makeLatency(config), config.seed);
  vod::VideoLibrary library(*catalog, config.vod);
  vod::Metrics metrics(catalog->userCount(), config.vod.videosPerSession);
  vod::SystemContext ctx(simulator, network, *catalog, library, config.vod,
                         metrics, config.seed);
  vod::TransferManager transfers(ctx);
  const std::unique_ptr<vod::VodSystem> system =
      makeSystem(kind, ctx, transfers);
  vod::VideoSelector selector(*catalog, config.vod, config.seed);
  selector.attachContext(ctx);
  vod::SessionDriver driver(ctx, *system, transfers, selector, config.seed);

  // Dynamic uploads, if configured: hold some videos back and publish them
  // during the run, feeding the channels' subscribers.
  vod::ReleaseManager releases(ctx, selector,
                               config.releases.feedWatchProbability,
                               config.seed);
  if (config.releases.perChannel > 0) {
    const auto windowStart = static_cast<sim::SimTime>(
        config.releases.windowStartFraction *
        static_cast<double>(config.duration));
    const auto windowEnd = static_cast<sim::SimTime>(
        config.releases.windowEndFraction *
        static_cast<double>(config.duration));
    releases.schedule(vod::ReleaseManager::uniformPlan(
        *catalog, config.releases.perChannel, windowStart, windowEnd,
        config.seed));
  }

  driver.start();
  // Sample the origin server's membership-state size every 30 simulated
  // minutes (the §IV-A server-state comparison).
  RunningStats serverRegistrations;
  simulator.schedulePeriodic(30 * sim::kMinute, [&] {
    serverRegistrations.add(
        static_cast<double>(system->serverRegistrations()));
  });
  simulator.runUntil(config.duration);

  ExperimentResult result;
  result.system = std::string(system->name());
  result.mode = config.mode;
  result.seed = config.seed;
  result.normalizedPeerBandwidth = metrics.normalizedPeerBandwidth();
  result.startupDelayMs = metrics.startupDelayMs();
  result.startupTimeouts = metrics.startupTimeouts();
  result.linksByVideosWatched = metrics.linksByVideosWatched();
  result.redundantLinks = metrics.redundantLinks();
  result.serverRegistrations = serverRegistrations;
  result.bodyCompletions = metrics.bodyCompletions();
  result.rebuffers = metrics.rebuffers();
  result.watches = metrics.watches();
  result.cacheHits = metrics.cacheHits();
  result.prefetchHits = metrics.prefetchHits();
  result.prefetchIssued = metrics.prefetchIssued();
  result.channelHits = metrics.channelHits();
  result.categoryHits = metrics.categoryHits();
  result.serverFallbacks = metrics.serverFallbacks();
  result.probes = metrics.probes();
  result.repairs = metrics.repairs();
  result.peerChunks = metrics.totalPeerChunks();
  result.serverChunks = metrics.totalServerChunks();
  result.serverBytes = network.flows().bytesUploaded(ctx.serverEndpoint());
  {
    std::vector<double> uploads;
    uploads.reserve(catalog->userCount());
    for (std::size_t i = 0; i < catalog->userCount(); ++i) {
      uploads.push_back(static_cast<double>(network.flows().bytesUploaded(
          EndpointId{static_cast<std::uint32_t>(i)})));
    }
    result.uploadGini = giniCoefficient(uploads);
  }
  result.messagesSent = network.messagesSent();
  result.messagesLost = network.messagesLost();
  result.sessionsCompleted = driver.sessionsCompleted();
  result.eventsFired = simulator.eventsFired();
  result.releasesFired = releases.releasesFired();
  result.feedNotifications = releases.feedNotifications();
  result.feedWatches = selector.feedWatches();
  return result;
}

std::vector<ExperimentResult> runAllSystems(const ExperimentConfig& config,
                                            std::size_t threads) {
  const trace::Catalog catalog = trace::generateTrace(config.trace);
  constexpr SystemKind kOrder[] = {SystemKind::kPaVod,
                                   SystemKind::kSocialTube,
                                   SystemKind::kNetTube};
  constexpr std::size_t kCount = std::size(kOrder);
  // Each run owns its whole simulator/metrics stack and only reads the
  // shared catalog, so the three systems can run concurrently; fixed result
  // slots keep the output order stable.
  std::vector<ExperimentResult> results(kCount);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(std::min(threads, kCount));
  parallelFor(pool ? &*pool : nullptr, kCount, [&](std::size_t i) {
    results[i] = runExperiment(config, kOrder[i], &catalog);
  });
  return results;
}

}  // namespace st::exp
