// Multi-seed replication: run the same experiment across independent seeds
// (fresh trace + fresh schedule each) and report mean +/- standard error for
// the headline metrics. Guards the single-run figures against lucky seeds.
//
// Replications are independent (each owns its simulator, trace, and RNG
// stack), so they dispatch onto a ThreadPool when `threads > 1`. Results are
// collected into per-seed slots and aggregated in seed order afterwards, so
// every aggregate is bitwise-identical to the sequential threads=1 path
// regardless of worker count or completion order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"

namespace st::exp {

struct AggregateStat {
  double mean = 0.0;
  double stderrOfMean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t runs = 0;
};

struct MultiSeedSummary {
  std::string system;
  AggregateStat peerFraction;    // aggregate normalized peer bandwidth
  AggregateStat delayMeanMs;     // mean startup delay
  AggregateStat delayP99Ms;      // tail startup delay
  AggregateStat linksFinal;      // mean links after the last session video
  AggregateStat rebufferRate;
  std::vector<ExperimentResult> runs;  // ordered by seed: base, base+1, ...

  // Execution telemetry (wall clock, not simulated time; excluded from the
  // determinism guarantee — only the metric aggregates above are bitwise
  // reproducible across thread counts).
  std::size_t threads = 1;      // workers the batch ran on
  double wallMs = 0.0;          // end-to-end batch wall clock
  AggregateStat runWallMs;      // per-replication wall clock
  // sum(per-run wall) / (batch wall * threads): 1.0 means every worker was
  // busy the whole time; low values expose stragglers or an oversized pool.
  double poolUtilization = 0.0;
  // Per-phase wall clock across replications (trace_gen/setup/event_loop/
  // extract), aggregated by phase name in first-seen order.
  std::vector<std::pair<std::string, AggregateStat>> phaseWallMs;
};

// Runs `seeds` replications with seeds base.seed, base.seed+1, ..., on
// `threads` workers (1 = sequential in the calling thread).
MultiSeedSummary runSeeds(const ExperimentConfig& base, SystemKind system,
                          std::size_t seeds, std::size_t threads = 1);

// Formats "mean +/- stderr [min, max]".
std::string formatStat(const AggregateStat& stat);

}  // namespace st::exp
