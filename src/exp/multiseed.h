// Multi-seed replication: run the same experiment across independent seeds
// (fresh trace + fresh schedule each) and report mean +/- standard error for
// the headline metrics. Guards the single-run figures against lucky seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"

namespace st::exp {

struct AggregateStat {
  double mean = 0.0;
  double stderrOfMean = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t runs = 0;
};

struct MultiSeedSummary {
  std::string system;
  AggregateStat peerFraction;    // aggregate normalized peer bandwidth
  AggregateStat delayMeanMs;     // mean startup delay
  AggregateStat delayP99Ms;      // tail startup delay
  AggregateStat linksFinal;      // mean links after the last session video
  AggregateStat rebufferRate;
  std::vector<ExperimentResult> runs;
};

// Runs `seeds` replications with seeds base.seed, base.seed+1, ....
MultiSeedSummary runSeeds(const ExperimentConfig& base, SystemKind system,
                          std::size_t seeds);

// Formats "mean +/- stderr [min, max]".
std::string formatStat(const AggregateStat& stat);

}  // namespace st::exp
