#include "exp/analytical.h"

#include <cassert>
#include <cmath>

namespace st::exp::analytical {

double socialTubeOverhead(double usersPerChannel, double usersPerInterest) {
  assert(usersPerChannel >= 1.0 && usersPerInterest >= 1.0);
  return std::log(usersPerChannel) + std::log(usersPerInterest);
}

double netTubeOverhead(std::size_t videosWatched, double viewersPerVideo) {
  assert(viewersPerVideo >= 1.0);
  return static_cast<double>(videosWatched) * std::log(viewersPerVideo);
}

std::vector<OverheadPoint> fig15Series(std::size_t maxVideos,
                                       double viewersPerVideo,
                                       double usersPerChannel,
                                       double usersPerInterest) {
  std::vector<OverheadPoint> series;
  series.reserve(maxVideos);
  for (std::size_t m = 1; m <= maxVideos; ++m) {
    series.push_back({m, socialTubeOverhead(usersPerChannel, usersPerInterest),
                      netTubeOverhead(m, viewersPerVideo)});
  }
  return series;
}

double prefetchAccuracy(std::size_t channelVideos, std::size_t prefetched,
                        double zipfExponent) {
  assert(channelVideos > 0);
  if (prefetched >= channelVideos) return 1.0;
  double total = 0.0;
  double top = 0.0;
  for (std::size_t k = 1; k <= channelVideos; ++k) {
    const double weight = 1.0 / std::pow(static_cast<double>(k), zipfExponent);
    total += weight;
    if (k <= prefetched) top += weight;
  }
  return top / total;
}

}  // namespace st::exp::analytical
