#include "exp/report.h"

#include <cstdio>

namespace st::exp {

void printPercentiles(const std::string& name, const SampleSet& samples,
                      const std::vector<double>& percentiles) {
  std::printf("%-28s n=%-8zu", name.c_str(), samples.count());
  for (const double p : percentiles) {
    std::printf(" p%-4.4g=%-12.6g", p, samples.percentile(p));
  }
  std::printf("\n");
}

void printCdf(const std::string& name, const SampleSet& samples,
              std::size_t points) {
  std::printf("%s CDF (n=%zu):\n", name.c_str(), samples.count());
  std::printf("  %-12s %s\n", "fraction", "value");
  for (std::size_t i = 1; i <= points; ++i) {
    const double fraction =
        static_cast<double>(i) / static_cast<double>(points);
    std::printf("  %-12.3f %.6g\n", fraction, samples.quantile(fraction));
  }
}

void printPeerBandwidth(const std::vector<ExperimentResult>& results) {
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "system", "p1", "p50", "p99",
              "aggregate");
  for (const ExperimentResult& r : results) {
    std::printf("%-12s %-10.3f %-10.3f %-10.3f %-10.3f\n", r.system.c_str(),
                r.normalizedPeerBandwidth.percentile(1),
                r.normalizedPeerBandwidth.percentile(50),
                r.normalizedPeerBandwidth.percentile(99),
                r.aggregatePeerFraction());
  }
}

void printStartupDelay(const std::string& label,
                       const ExperimentResult& result) {
  std::printf(
      "%-24s mean=%-9.1f p50=%-9.1f p90=%-9.1f p99=%-9.1f timeouts=%llu\n",
      label.c_str(), result.startupDelayMs.mean(),
      result.startupDelayMs.percentile(50), result.startupDelayMs.percentile(90),
      result.startupDelayMs.percentile(99),
      static_cast<unsigned long long>(result.startupTimeouts()));
}

void printMaintenance(const std::vector<ExperimentResult>& results) {
  std::printf("%-8s", "videos");
  for (const ExperimentResult& r : results) {
    std::printf(" %-12s", r.system.c_str());
  }
  std::printf("\n");
  std::size_t maxLen = 0;
  for (const ExperimentResult& r : results) {
    maxLen = std::max(maxLen, r.linksByVideosWatched.size());
  }
  for (std::size_t n = 1; n < maxLen; ++n) {
    std::printf("%-8zu", n);
    for (const ExperimentResult& r : results) {
      if (n < r.linksByVideosWatched.size()) {
        std::printf(" %-12.2f", r.linksByVideosWatched[n].mean());
      } else {
        std::printf(" %-12s", "-");
      }
    }
    std::printf("\n");
  }
}

void printCounters(const ExperimentResult& result) {
  // Generic dump of the run's counter snapshot: any counter registered
  // anywhere in the stack shows up here without a format-string change.
  std::printf("%s:", result.system.c_str());
  std::size_t onLine = 0;
  for (const obs::Snapshot::Entry& entry : result.counters.entries()) {
    if (onLine == 6) {
      std::printf("\n   ");
      onLine = 0;
    }
    std::printf(" %s=%llu", entry.name.c_str(),
                static_cast<unsigned long long>(entry.value));
    ++onLine;
  }
  std::printf("\n");
  std::printf(
      "    rebufferRate=%.3f uploadGini=%.3f serverRegsPeak=%.0f "
      "redundantLinks=%.2f\n",
      result.rebufferRate(), result.uploadGini,
      result.serverRegistrations.max(), result.redundantLinks.mean());
}

void printPhases(const ExperimentResult& result) {
  std::printf("%s phases:", result.system.c_str());
  for (const obs::Phase& phase : result.phases) {
    std::printf(" %s=%.1fms", phase.name.c_str(), phase.ms);
  }
  std::printf("\n");
}

}  // namespace st::exp
