// Shared console formatting for the bench binaries: the same rows/series
// the paper's figures plot, in stable plain-text form.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/stats.h"

namespace st::exp {

// "name: p1=… p25=… p50=… p75=… p99=…" one-liner for a sample set.
void printPercentiles(const std::string& name, const SampleSet& samples,
                      const std::vector<double>& percentiles = {1, 25, 50, 75,
                                                                99});

// CDF table: value at each of `points` evenly spaced cumulative fractions.
void printCdf(const std::string& name, const SampleSet& samples,
              std::size_t points = 10);

// Fig. 16-style block: 1st/50th/99th percentile of normalized peer
// bandwidth for each system.
void printPeerBandwidth(const std::vector<ExperimentResult>& results);

// Fig. 17-style block: startup delay statistics per system/variant label.
void printStartupDelay(const std::string& label,
                       const ExperimentResult& result);

// Fig. 18-style block: mean links after n-th video per system.
void printMaintenance(const std::vector<ExperimentResult>& results);

// Protocol counter summary: every registered counter by name, plus the
// derived rates (rebuffer rate, upload Gini, server-state peak).
void printCounters(const ExperimentResult& result);

// Wall-clock phase breakdown of a run (trace_gen/setup/event_loop/extract).
void printPhases(const ExperimentResult& result);

}  // namespace st::exp
