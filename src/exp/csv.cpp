#include "exp/csv.h"

#include <cstdio>
#include <sstream>

namespace st::exp {

std::string csvHeader(const ExperimentResult& exemplar) {
  std::ostringstream out;
  out << "label,system,mode,peer_fraction,peer_bw_p1,peer_bw_p50,peer_bw_p99,"
         "delay_mean_ms,delay_p50_ms,delay_p90_ms,delay_p99_ms,"
         "links_final_mean,redundant_links_mean,server_regs_mean,"
         "server_regs_peak,rebuffer_rate,upload_gini";
  for (const obs::Snapshot::Entry& entry : exemplar.counters.entries()) {
    out << ',' << entry.name;
  }
  return out.str();
}

std::string csvRow(const std::string& label, const ExperimentResult& r) {
  std::ostringstream out;
  const double linksFinal = r.linksByVideosWatched.empty()
                                ? 0.0
                                : r.linksByVideosWatched.back().mean();
  out << label << ',' << r.system << ','
      << (r.mode == Mode::kPlanetLab ? "planetlab" : "simulation") << ','
      << r.aggregatePeerFraction() << ','
      << r.normalizedPeerBandwidth.percentile(1) << ','
      << r.normalizedPeerBandwidth.percentile(50) << ','
      << r.normalizedPeerBandwidth.percentile(99) << ','
      << r.startupDelayMs.mean() << ',' << r.startupDelayMs.percentile(50)
      << ',' << r.startupDelayMs.percentile(90) << ','
      << r.startupDelayMs.percentile(99) << ',' << linksFinal << ','
      << r.redundantLinks.mean() << ',' << r.serverRegistrations.mean() << ','
      << r.serverRegistrations.max() << ',' << r.rebufferRate() << ','
      << r.uploadGini;
  for (const obs::Snapshot::Entry& entry : r.counters.entries()) {
    out << ',' << entry.value;
  }
  return out.str();
}

bool writeResultsCsv(
    const std::string& path,
    const std::vector<std::pair<std::string, ExperimentResult>>& rows) {
  if (rows.empty()) return false;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file, "%s\n", csvHeader(rows.front().second).c_str());
  for (const auto& [label, result] : rows) {
    std::fprintf(file, "%s\n", csvRow(label, result).c_str());
  }
  std::fclose(file);
  return true;
}

}  // namespace st::exp
