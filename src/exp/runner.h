// Wires a full experiment: catalog -> network -> system -> session driver,
// runs it to the horizon, and extracts the paper's metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/config.h"
#include "trace/catalog.h"
#include "util/stats.h"

namespace st::exp {

enum class SystemKind { kSocialTube, kNetTube, kPaVod };

[[nodiscard]] const char* systemName(SystemKind kind);

struct ExperimentResult {
  std::string system;
  Mode mode = Mode::kSimulation;
  // Seed the run executed with; lets replication callers verify ordering.
  std::uint64_t seed = 0;

  // Fig. 16: per-node peer fraction of remotely fetched chunks.
  SampleSet normalizedPeerBandwidth;
  // Fig. 17: per-watch startup delay (ms).
  SampleSet startupDelayMs;
  std::uint64_t startupTimeouts = 0;
  // Fig. 18: mean link count after the n-th video of a session (index n).
  std::vector<RunningStats> linksByVideosWatched;
  // §IV-C: redundant pairwise links (NetTube only; zero elsewhere).
  RunningStats redundantLinks;
  // §IV-A: size of the origin server's membership state, sampled
  // periodically over the run ((user, channel/video) registrations).
  RunningStats serverRegistrations;
  // Playback continuity: completed bodies that arrived slower than
  // real-time (the viewer would have stalled).
  std::uint64_t bodyCompletions = 0;
  std::uint64_t rebuffers = 0;
  // Fairness of the seeding load: Gini coefficient of per-user bytes
  // uploaded (0 = everyone contributes equally).
  double uploadGini = 0.0;

  // Protocol counters.
  std::uint64_t watches = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t prefetchHits = 0;
  std::uint64_t prefetchIssued = 0;
  std::uint64_t channelHits = 0;
  std::uint64_t categoryHits = 0;
  std::uint64_t serverFallbacks = 0;
  std::uint64_t probes = 0;
  std::uint64_t repairs = 0;
  std::uint64_t peerChunks = 0;
  std::uint64_t serverChunks = 0;
  std::uint64_t serverBytes = 0;  // data-plane bytes the origin served
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesLost = 0;
  std::uint64_t sessionsCompleted = 0;
  std::uint64_t eventsFired = 0;
  // Dynamic uploads (when config.releases.perChannel > 0).
  std::uint64_t releasesFired = 0;
  std::uint64_t feedNotifications = 0;
  std::uint64_t feedWatches = 0;

  [[nodiscard]] double rebufferRate() const {
    return bodyCompletions == 0 ? 0.0
                                : static_cast<double>(rebuffers) /
                                      static_cast<double>(bodyCompletions);
  }
  [[nodiscard]] double prefetchHitRate() const {
    return watches == 0 ? 0.0
                        : static_cast<double>(prefetchHits) /
                              static_cast<double>(watches);
  }
  [[nodiscard]] double aggregatePeerFraction() const {
    const std::uint64_t total = peerChunks + serverChunks;
    return total == 0 ? 0.0
                      : static_cast<double>(peerChunks) /
                            static_cast<double>(total);
  }
};

// Runs one experiment. When `catalog` is null a trace is generated from
// config.trace (deterministic in the seed), so runs of different systems
// against the same config see the same workload.
ExperimentResult runExperiment(const ExperimentConfig& config,
                               SystemKind system,
                               const trace::Catalog* catalog = nullptr);

// Convenience: run all three systems against one shared catalog, in the
// stable order PA-VoD, SocialTube, NetTube. With `threads > 1` the three
// runs dispatch onto a worker pool; each run is fully independent (own
// simulator/metrics, shared const catalog), so the results are identical
// to the sequential path.
std::vector<ExperimentResult> runAllSystems(const ExperimentConfig& config,
                                            std::size_t threads = 1);

}  // namespace st::exp
