// Wires a full experiment: catalog -> network -> system -> session driver,
// runs it to the horizon, and extracts the paper's metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exp/config.h"
#include "obs/event_trace.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "trace/catalog.h"
#include "util/stats.h"

namespace st::exp {

enum class SystemKind { kSocialTube, kNetTube, kPaVod };

[[nodiscard]] const char* systemName(SystemKind kind);

struct ExperimentResult {
  std::string system;
  Mode mode = Mode::kSimulation;
  // Seed the run executed with; lets replication callers verify ordering.
  std::uint64_t seed = 0;

  // Fig. 16: per-node peer fraction of remotely fetched chunks.
  SampleSet normalizedPeerBandwidth;
  // Fig. 17: per-watch startup delay (ms).
  SampleSet startupDelayMs;
  // Fig. 18: mean link count after the n-th video of a session (index n).
  std::vector<RunningStats> linksByVideosWatched;
  // §IV-C: redundant pairwise links (NetTube only; zero elsewhere).
  RunningStats redundantLinks;
  // §IV-A: size of the origin server's membership state, sampled
  // periodically over the run ((user, channel/video) registrations).
  RunningStats serverRegistrations;
  // Fairness of the seeding load: Gini coefficient of per-user bytes
  // uploaded (0 = everyone contributes equally).
  double uploadGini = 0.0;
  // CRC-32 of the system's serialized overlay/cache/search state at the
  // horizon. Two runs that end in bitwise-identical overlay state share
  // this fingerprint; the snapshot differential harness compares it between
  // a restored run and its uninterrupted twin.
  std::uint32_t overlayFingerprint = 0;

  // Every scalar counter/gauge registered during the run, snapshotted at
  // the horizon, sorted by name. CSV columns and report lines come from
  // here — registering a new counter anywhere in the stack is enough to
  // get it exported; no per-field plumbing.
  obs::Snapshot counters;
  // Wall-clock phase breakdown of runExperiment (trace_gen/setup/
  // event_loop/extract). Timing only — excluded from determinism checks.
  std::vector<obs::Phase> phases;

  // Typed views of the counters the paper's figures and tests read most.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    return counters.at(name);
  }
  [[nodiscard]] std::uint64_t watches() const { return counter("watches"); }
  [[nodiscard]] std::uint64_t startupTimeouts() const {
    return counter("startup_timeouts");
  }
  [[nodiscard]] std::uint64_t cacheHits() const {
    return counter("cache_hits");
  }
  [[nodiscard]] std::uint64_t prefetchHits() const {
    return counter("prefetch_hits");
  }
  [[nodiscard]] std::uint64_t prefetchIssued() const {
    return counter("prefetch_issued");
  }
  [[nodiscard]] std::uint64_t channelHits() const {
    return counter("channel_hits");
  }
  [[nodiscard]] std::uint64_t categoryHits() const {
    return counter("category_hits");
  }
  [[nodiscard]] std::uint64_t serverFallbacks() const {
    return counter("server_fallbacks");
  }
  [[nodiscard]] std::uint64_t probes() const { return counter("probes"); }
  [[nodiscard]] std::uint64_t repairs() const { return counter("repairs"); }
  [[nodiscard]] std::uint64_t bodyCompletions() const {
    return counter("body_completions");
  }
  [[nodiscard]] std::uint64_t rebuffers() const {
    return counter("rebuffers");
  }
  [[nodiscard]] std::uint64_t peerChunks() const {
    return counter("peer_chunks");
  }
  [[nodiscard]] std::uint64_t serverChunks() const {
    return counter("server_chunks");
  }
  [[nodiscard]] std::uint64_t serverBytes() const {
    return counter("server_bytes");
  }
  [[nodiscard]] std::uint64_t messagesSent() const {
    return counter("messages_sent");
  }
  [[nodiscard]] std::uint64_t messagesLost() const {
    return counter("messages_lost");
  }
  [[nodiscard]] std::uint64_t sessionsCompleted() const {
    return counter("sessions_completed");
  }
  [[nodiscard]] std::uint64_t eventsFired() const {
    return counter("events_fired");
  }
  [[nodiscard]] std::uint64_t releasesFired() const {
    return counter("releases_fired");
  }
  [[nodiscard]] std::uint64_t feedNotifications() const {
    return counter("feed_notifications");
  }
  [[nodiscard]] std::uint64_t feedWatches() const {
    return counter("feed_watches");
  }

  // Test/fixture helper: insert or overwrite one counter entry.
  void setCounter(std::string_view name, std::uint64_t value) {
    counters.set(name, value);
  }

  [[nodiscard]] double rebufferRate() const {
    const std::uint64_t bodies = bodyCompletions();
    return bodies == 0 ? 0.0
                       : static_cast<double>(rebuffers()) /
                             static_cast<double>(bodies);
  }
  [[nodiscard]] double prefetchHitRate() const {
    const std::uint64_t total = watches();
    return total == 0 ? 0.0
                      : static_cast<double>(prefetchHits()) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double aggregatePeerFraction() const {
    const std::uint64_t total = peerChunks() + serverChunks();
    return total == 0 ? 0.0
                      : static_cast<double>(peerChunks()) /
                            static_cast<double>(total);
  }
};

// Runs one experiment. When `catalog` is null a trace is generated from
// config.trace (deterministic in the seed), so runs of different systems
// against the same config see the same workload. When `trace` is non-null
// protocol events are recorded into it (the caller owns flushing);
// otherwise config.obs.traceOut, if set, creates a run-local sink flushed
// to that path at the horizon.
ExperimentResult runExperiment(const ExperimentConfig& config,
                               SystemKind system,
                               const trace::Catalog* catalog = nullptr,
                               obs::EventTrace* trace = nullptr);

// Convenience: run all three systems against one shared catalog, in the
// stable order PA-VoD, SocialTube, NetTube. With `threads > 1` the three
// runs dispatch onto a worker pool; each run is fully independent (own
// simulator/metrics, shared const catalog), so the results are identical
// to the sequential path. config.obs.traceOut gets a ".<system>" suffix
// per run so parallel runs never clobber one file.
std::vector<ExperimentResult> runAllSystems(const ExperimentConfig& config,
                                            std::size_t threads = 1);

}  // namespace st::exp
