// Closed-form models the paper derives.
//
// Fig. 15 — maintenance overhead: with u_c users per channel and u_t users
// per interest, SocialTube maintains log(u_c) + log(u_t) links regardless of
// viewing history, while NetTube maintains m * log(u) links after m videos
// of u viewers each.
//
// §IV-B — prefetch accuracy: with within-channel views Zipf(s = 1) over N
// videos, prefetching the top-M most popular videos captures
// sum_{k=1..M} (1/k) / H_N of the next-video probability mass (26.2% for
// M = 1, N = 25; 54.6% for M = 4).
#pragma once

#include <cstddef>
#include <vector>

namespace st::exp::analytical {

// Links a SocialTube node maintains (constant in videos watched).
double socialTubeOverhead(double usersPerChannel, double usersPerInterest);

// Links a NetTube node maintains after watching `videosWatched` videos with
// `viewersPerVideo` viewers each.
double netTubeOverhead(std::size_t videosWatched, double viewersPerVideo);

// The Fig. 15 series: overheads for m = 1..maxVideos with the paper's
// example constants (u = 500, u_c = 5,000, u_t = 25,000).
struct OverheadPoint {
  std::size_t videosWatched;
  double socialTube;
  double netTube;
};
std::vector<OverheadPoint> fig15Series(std::size_t maxVideos = 10,
                                       double viewersPerVideo = 500.0,
                                       double usersPerChannel = 5'000.0,
                                       double usersPerInterest = 25'000.0);

// Probability that the next same-channel video is among the top-M
// prefetched ones, for a channel of `channelVideos` videos with Zipf
// exponent `s`.
double prefetchAccuracy(std::size_t channelVideos, std::size_t prefetched,
                        double zipfExponent = 1.0);

}  // namespace st::exp::analytical
