// Session/churn driver (§V experiment methodology).
//
// Each user runs `sessionsPerUser` sessions of `videosPerSession` videos.
// Off times between sessions are exponential (Poisson arrival process, per
// Chatzopoulou et al. as cited in the paper); a configurable fraction of
// departures are abrupt. Per-user RNG streams make the schedule identical
// across the three systems under comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "snapshot/codec.h"
#include "vod/context.h"
#include "vod/selector.h"
#include "vod/system.h"
#include "vod/transfer.h"

namespace st::vod {

class SessionDriver final : public sim::EventFactory {
 public:
  // Tag kinds (Component::kSession) — append-only, stored in snapshots.
  static constexpr std::uint8_t kLoginEvent = 0;         // a = user
  static constexpr std::uint8_t kPlaybackDoneEvent = 1;  // a = user, b = video

  SessionDriver(SystemContext& ctx, VodSystem& system,
                TransferManager& transfers, VideoSelector& selector,
                std::uint64_t seed);
  ~SessionDriver() override;

  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override;

  // Schedules the initial logins; call once before Simulator::run().
  void start();

  // Forced ungraceful departure (fault injection): the user drops offline
  // immediately with no goodbye messages, exactly like an abrupt logout.
  // The interrupted session still counts and the user returns after the
  // usual exponential off time. No-op when the user is already offline.
  void crashUser(UserId user);

  // Users that finished all their sessions.
  [[nodiscard]] std::size_t usersCompleted() const { return usersCompleted_; }
  [[nodiscard]] std::uint64_t sessionsCompleted() const {
    return sessionsCompleted_;
  }
  [[nodiscard]] std::uint64_t videosWatched() const { return videosWatched_; }

  // Serializes per-user progress, the churn RNG streams, and the completion
  // tallies. Pending login / playback-done events live in the simulator
  // queue and are rebuilt from their tags on restore.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  struct UserState {
    std::size_t sessionsDone = 0;
    std::size_t videosThisSession = 0;
    VideoId currentVideo = VideoId::invalid();
    bool online = false;
  };

  void login(UserId user);
  void logout(UserId user);
  // Shared tail of logout (graceful flag drawn) and crashUser (forced
  // abrupt): take the user offline and schedule the next session.
  void endSession(UserId user, bool graceful);
  void requestNext(UserId user);
  void onPlaybackReady(UserId user, VideoId video, sim::SimTime delay,
                       bool timedOut);
  void onPlaybackComplete(UserId user, VideoId video);

  SystemContext& ctx_;
  VodSystem& system_;
  TransferManager& transfers_;
  VideoSelector& selector_;
  std::vector<UserState> users_;
  std::vector<Rng> userRngs_;  // churn timing streams
  std::size_t usersCompleted_ = 0;
  std::uint64_t sessionsCompleted_ = 0;
  std::uint64_t videosWatched_ = 0;
};

}  // namespace st::vod
