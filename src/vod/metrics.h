// Evaluation metrics (§V): startup delay, normalized peer bandwidth, and
// overlay maintenance overhead, plus protocol counters used by tests and
// ablation benches.
//
// Scalar counters live in an obs::Registry owned by this class — the
// count*() helpers increment pre-resolved registry slots, and derived
// scalars (watches, chunk totals) are registered as gauges. Anything
// registered here flows into ExperimentResult / CSV / report snapshots
// automatically; read individual counters back via value("cache_hits") or
// the full registry().
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/registry.h"
#include "snapshot/codec.h"
#include "util/stats.h"
#include "util/strong_id.h"

namespace st::vod {

enum class ChunkSource { kPeer, kServer };

class Metrics {
 public:
  explicit Metrics(std::size_t userCount, std::size_t videosPerSession);
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // --- startup delay (Fig. 17) ----------------------------------------------
  void recordStartupDelay(double delayMs) { startupDelayMs_.add(delayMs); }
  void recordStartupTimeout() { startupTimeouts_->inc(); }
  [[nodiscard]] const SampleSet& startupDelayMs() const {
    return startupDelayMs_;
  }

  // --- chunk accounting (Fig. 16) --------------------------------------------
  void recordChunks(UserId user, ChunkSource source, std::uint64_t chunks);
  [[nodiscard]] std::uint64_t peerChunks(UserId user) const {
    return peerChunks_[user.index()];
  }
  [[nodiscard]] std::uint64_t serverChunks(UserId user) const {
    return serverChunks_[user.index()];
  }
  [[nodiscard]] std::uint64_t totalPeerChunks() const;
  [[nodiscard]] std::uint64_t totalServerChunks() const;
  // Per-node normalized peer bandwidth = peer / (peer + server); nodes with
  // no remote chunks at all are skipped.
  [[nodiscard]] SampleSet normalizedPeerBandwidth() const;

  // --- maintenance overhead (Fig. 18) -----------------------------------------
  // Called after a user finishes their n-th video of the session (1-based)
  // with the user's current link count.
  void recordLinks(std::size_t videosWatched, std::size_t links);
  [[nodiscard]] const std::vector<RunningStats>& linksByVideosWatched() const {
    return linksByVideosWatched_;
  }

  // --- playback continuity -----------------------------------------------------
  // A body download that finishes later than real-time playback would have
  // consumed it means the viewer stalled at least once.
  void countBodyCompletion(bool onTime) {
    bodyCompletions_->inc();
    if (!onTime) rebuffers_->inc();
  }
  [[nodiscard]] double rebufferRate() const {
    const std::uint64_t bodies = bodyCompletions_->value();
    return bodies == 0 ? 0.0
                       : static_cast<double>(rebuffers_->value()) /
                             static_cast<double>(bodies);
  }

  // --- playback SLO accounting (overload control) ------------------------------
  // Time-weighted continuity: every completed body contributes its runtime
  // as playback time, and any excess of download time over runtime as stall
  // time. rebufferRatio = stall / (stall + playback) is the quantity the
  // --overload slo knob targets. Plain members rather than registry slots so
  // overload-off snapshots keep their exact column set; the runner exports
  // slo.* gauges only when overload control is active.
  void recordPlayback(double seconds) { playbackSeconds_ += seconds; }
  void recordStall(double seconds) {
    ++stallCount_;
    stallSeconds_ += seconds;
  }
  [[nodiscard]] std::uint64_t stallCount() const { return stallCount_; }
  [[nodiscard]] double stallSeconds() const { return stallSeconds_; }
  [[nodiscard]] double playbackSeconds() const { return playbackSeconds_; }
  [[nodiscard]] double rebufferRatio() const {
    const double total = stallSeconds_ + playbackSeconds_;
    return total <= 0.0 ? 0.0 : stallSeconds_ / total;
  }

  // Prefetches suppressed by backpressure (credit exhausted or the user's
  // link already contended). Same plain-member rationale as the SLO stats.
  void countPrefetchThrottled() { ++prefetchThrottled_; }
  [[nodiscard]] std::uint64_t prefetchThrottled() const {
    return prefetchThrottled_;
  }

  // --- NetTube redundancy (§IV-C) ----------------------------------------------
  void recordRedundantLinks(std::size_t count) {
    redundantLinks_.add(static_cast<double>(count));
  }
  [[nodiscard]] const RunningStats& redundantLinks() const {
    return redundantLinks_;
  }

  // --- protocol counters --------------------------------------------------------
  void countCacheHit() { cacheHits_->inc(); }
  void countPrefetchHit() { prefetchHits_->inc(); }
  void countPrefetchIssued() { prefetchIssued_->inc(); }
  void countChannelHit() { channelHits_->inc(); }
  void countCategoryHit() { categoryHits_->inc(); }
  void countServerFallback() { serverFallbacks_->inc(); }
  void countProbe() { probes_->inc(); }
  void countRepair() { repairs_->inc(); }
  // Graceful-degradation tallies (fault hardening): overlay search attempts
  // replayed after a phase timeout, and transfers re-sourced to a surviving
  // provider (or the server) after their source crashed mid-chunk.
  void countSearchRetry() { searchRetries_->inc(); }
  void countTransferResourced() { transferResourced_->inc(); }

  // Total video watches that began playback (delays + timeouts). Also
  // exported as the "watches" gauge — the registry and this accessor share
  // one derivation, so they can never drift apart.
  [[nodiscard]] std::uint64_t watches() const {
    return startupDelayMs_.count() + startupTimeouts_->value();
  }

  // --- observability -------------------------------------------------------------
  // Generic access to any registered counter/gauge, e.g.
  // value("server_fallbacks"). This replaces the old per-counter getters.
  [[nodiscard]] std::uint64_t value(std::string_view name) const {
    return registry_.value(name);
  }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

  // Checkpoint/restore of every accumulated statistic plus all registry
  // *counters* by name (gauges re-derive from restored component state).
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  obs::Registry registry_;
  SampleSet startupDelayMs_;
  std::vector<std::uint64_t> peerChunks_;
  std::vector<std::uint64_t> serverChunks_;
  std::vector<RunningStats> linksByVideosWatched_;
  RunningStats redundantLinks_;
  std::uint64_t stallCount_ = 0;
  double stallSeconds_ = 0.0;
  double playbackSeconds_ = 0.0;
  std::uint64_t prefetchThrottled_ = 0;
  // Registry-owned slots, cached for branch-free increments.
  obs::Counter* startupTimeouts_;
  obs::Counter* cacheHits_;
  obs::Counter* prefetchHits_;
  obs::Counter* prefetchIssued_;
  obs::Counter* channelHits_;
  obs::Counter* categoryHits_;
  obs::Counter* serverFallbacks_;
  obs::Counter* probes_;
  obs::Counter* repairs_;
  obs::Counter* bodyCompletions_;
  obs::Counter* rebuffers_;
  obs::Counter* searchRetries_;
  obs::Counter* transferResourced_;
};

}  // namespace st::vod
