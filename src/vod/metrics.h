// Evaluation metrics (§V): startup delay, normalized peer bandwidth, and
// overlay maintenance overhead, plus protocol counters used by tests and
// ablation benches.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"
#include "util/strong_id.h"

namespace st::vod {

enum class ChunkSource { kPeer, kServer };

class Metrics {
 public:
  explicit Metrics(std::size_t userCount, std::size_t videosPerSession);

  // --- startup delay (Fig. 17) ----------------------------------------------
  void recordStartupDelay(double delayMs) { startupDelayMs_.add(delayMs); }
  void recordStartupTimeout() { ++startupTimeouts_; }
  [[nodiscard]] const SampleSet& startupDelayMs() const {
    return startupDelayMs_;
  }
  [[nodiscard]] std::uint64_t startupTimeouts() const {
    return startupTimeouts_;
  }

  // --- chunk accounting (Fig. 16) --------------------------------------------
  void recordChunks(UserId user, ChunkSource source, std::uint64_t chunks);
  [[nodiscard]] std::uint64_t peerChunks(UserId user) const {
    return peerChunks_[user.index()];
  }
  [[nodiscard]] std::uint64_t serverChunks(UserId user) const {
    return serverChunks_[user.index()];
  }
  [[nodiscard]] std::uint64_t totalPeerChunks() const;
  [[nodiscard]] std::uint64_t totalServerChunks() const;
  // Per-node normalized peer bandwidth = peer / (peer + server); nodes with
  // no remote chunks at all are skipped.
  [[nodiscard]] SampleSet normalizedPeerBandwidth() const;

  // --- maintenance overhead (Fig. 18) -----------------------------------------
  // Called after a user finishes their n-th video of the session (1-based)
  // with the user's current link count.
  void recordLinks(std::size_t videosWatched, std::size_t links);
  [[nodiscard]] const std::vector<RunningStats>& linksByVideosWatched() const {
    return linksByVideosWatched_;
  }

  // --- playback continuity -----------------------------------------------------
  // A body download that finishes later than real-time playback would have
  // consumed it means the viewer stalled at least once.
  void countBodyCompletion(bool onTime) {
    ++bodyCompletions_;
    if (!onTime) ++rebuffers_;
  }
  [[nodiscard]] std::uint64_t bodyCompletions() const {
    return bodyCompletions_;
  }
  [[nodiscard]] std::uint64_t rebuffers() const { return rebuffers_; }
  [[nodiscard]] double rebufferRate() const {
    return bodyCompletions_ == 0
               ? 0.0
               : static_cast<double>(rebuffers_) /
                     static_cast<double>(bodyCompletions_);
  }

  // --- NetTube redundancy (§IV-C) ----------------------------------------------
  void recordRedundantLinks(std::size_t count) {
    redundantLinks_.add(static_cast<double>(count));
  }
  [[nodiscard]] const RunningStats& redundantLinks() const {
    return redundantLinks_;
  }

  // --- protocol counters --------------------------------------------------------
  void countCacheHit() { ++cacheHits_; }
  void countPrefetchHit() { ++prefetchHits_; }
  void countPrefetchIssued() { ++prefetchIssued_; }
  void countChannelHit() { ++channelHits_; }
  void countCategoryHit() { ++categoryHits_; }
  void countServerFallback() { ++serverFallbacks_; }
  void countProbe() { ++probes_; }
  void countRepair() { ++repairs_; }

  [[nodiscard]] std::uint64_t cacheHits() const { return cacheHits_; }
  [[nodiscard]] std::uint64_t prefetchHits() const { return prefetchHits_; }
  [[nodiscard]] std::uint64_t prefetchIssued() const { return prefetchIssued_; }
  [[nodiscard]] std::uint64_t channelHits() const { return channelHits_; }
  [[nodiscard]] std::uint64_t categoryHits() const { return categoryHits_; }
  [[nodiscard]] std::uint64_t serverFallbacks() const { return serverFallbacks_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }
  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }

  // Total video watches that began playback (delays + timeouts).
  [[nodiscard]] std::uint64_t watches() const {
    return startupDelayMs_.count() + startupTimeouts_;
  }

 private:
  SampleSet startupDelayMs_;
  std::uint64_t startupTimeouts_ = 0;
  std::vector<std::uint64_t> peerChunks_;
  std::vector<std::uint64_t> serverChunks_;
  std::vector<RunningStats> linksByVideosWatched_;
  std::uint64_t cacheHits_ = 0;
  std::uint64_t prefetchHits_ = 0;
  std::uint64_t prefetchIssued_ = 0;
  std::uint64_t channelHits_ = 0;
  std::uint64_t categoryHits_ = 0;
  std::uint64_t serverFallbacks_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t bodyCompletions_ = 0;
  std::uint64_t rebuffers_ = 0;
  RunningStats redundantLinks_;
};

}  // namespace st::vod
