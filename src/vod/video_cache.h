// Per-node video cache.
//
// NetTube and SocialTube nodes cache every video watched and keep the cache
// across sessions (§IV-A, §V). Separately, the prefetcher stores only the
// *first chunk* of a bounded number of videos; a prefetched chunk graduates
// to a full video after the body downloads.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "util/strong_id.h"

namespace st::vod {

class VideoCache {
 public:
  // maxVideos = 0 means unbounded (the paper's setting: short videos make
  // full retention cheap). Bounded caches evict FIFO.
  explicit VideoCache(std::size_t maxVideos = 0,
                      std::size_t prefetchSlots = 8);

  // --- full videos -----------------------------------------------------------
  void insert(VideoId video);
  [[nodiscard]] bool contains(VideoId video) const {
    return videos_.count(video) > 0;
  }
  [[nodiscard]] std::size_t size() const { return videos_.size(); }
  [[nodiscard]] const std::vector<VideoId>& videoList() const {
    return videoOrder_;
  }
  // Uniformly random cached video; invalid id when empty.
  [[nodiscard]] VideoId randomVideo(Rng& rng) const;

  // --- prefetched first chunks -------------------------------------------------
  void insertFirstChunk(VideoId video);
  [[nodiscard]] bool hasFirstChunk(VideoId video) const {
    return prefetched_.count(video) > 0;
  }
  // Drops the prefetched chunk entry (it either graduated to a full video or
  // was evicted logically).
  void removeFirstChunk(VideoId video);
  [[nodiscard]] std::size_t prefetchedCount() const {
    return prefetched_.size();
  }

  void clear();

 private:
  void evictIfNeeded();

  std::size_t maxVideos_;
  std::size_t prefetchSlots_;
  std::unordered_set<VideoId> videos_;
  std::vector<VideoId> videoOrder_;  // insertion order; FIFO eviction
  std::unordered_set<VideoId> prefetched_;
  std::deque<VideoId> prefetchOrder_;
};

}  // namespace st::vod
