// Per-node video cache.
//
// NetTube and SocialTube nodes cache every video watched and keep the cache
// across sessions (§IV-A, §V). Separately, the prefetcher stores only the
// *first chunk* of a bounded number of videos; a prefetched chunk graduates
// to a full video after the body downloads.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>
#include <vector>

#include "snapshot/codec.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace st::vod {

class VideoCache {
 public:
  // maxVideos = 0 means unbounded (the paper's setting: short videos make
  // full retention cheap). Bounded caches evict FIFO.
  explicit VideoCache(std::size_t maxVideos = 0,
                      std::size_t prefetchSlots = 8);

  // --- full videos -----------------------------------------------------------
  void insert(VideoId video);
  [[nodiscard]] bool contains(VideoId video) const {
    return videos_.count(video) > 0;
  }
  [[nodiscard]] std::size_t size() const { return videos_.size(); }
  [[nodiscard]] const std::vector<VideoId>& videoList() const {
    return videoOrder_;
  }
  // Uniformly random cached video; invalid id when empty.
  [[nodiscard]] VideoId randomVideo(Rng& rng) const;

  // --- prefetched first chunks -------------------------------------------------
  void insertFirstChunk(VideoId video);
  [[nodiscard]] bool hasFirstChunk(VideoId video) const {
    return prefetched_.count(video) > 0;
  }
  // Drops the prefetched chunk entry (it either graduated to a full video or
  // was evicted logically).
  void removeFirstChunk(VideoId video);
  [[nodiscard]] std::size_t prefetchedCount() const {
    return prefetched_.size();
  }

  void clear();

  // Checkpoint/restore: insertion order is behavioral (FIFO eviction and
  // randomVideo() draws by position), so both ordered sequences persist
  // verbatim and the hash sets are rebuilt from them.
  void saveState(snapshot::Writer& w) const {
    w.u64(videoOrder_.size());
    for (const VideoId v : videoOrder_) w.u32(v.value());
    w.u64(prefetchOrder_.size());
    for (const VideoId v : prefetchOrder_) w.u32(v.value());
  }
  bool loadState(snapshot::Reader& r) {
    clear();
    videoOrder_.resize(r.count(4));
    for (VideoId& v : videoOrder_) v = VideoId{r.u32()};
    const std::size_t prefetched = r.count(4);
    for (std::size_t i = 0; i < prefetched; ++i) {
      prefetchOrder_.push_back(VideoId{r.u32()});
    }
    if (!r.ok()) return false;
    videos_.insert(videoOrder_.begin(), videoOrder_.end());
    prefetched_.insert(prefetchOrder_.begin(), prefetchOrder_.end());
    return true;
  }

 private:
  void evictIfNeeded();

  std::size_t maxVideos_;
  std::size_t prefetchSlots_;
  std::unordered_set<VideoId> videos_;
  std::vector<VideoId> videoOrder_;  // insertion order; FIFO eviction
  std::unordered_set<VideoId> prefetched_;
  std::deque<VideoId> prefetchOrder_;
};

}  // namespace st::vod
