// Video selection behaviour (§V): when choosing the next video a user picks
// from the same channel with probability 0.75, the same category with 0.15,
// and a different category with 0.10; within a channel, videos are chosen
// by Zipf-weighted popularity (§IV-B).
//
// Each user has an independent RNG stream, so a user's k-th selection is
// identical across systems — the comparison in Figs. 16-18 is paired.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "snapshot/codec.h"
#include "trace/catalog.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "vod/config.h"

namespace st::vod {

class SystemContext;

class VideoSelector {
 public:
  VideoSelector(const trace::Catalog& catalog, const VodConfig& config,
                std::uint64_t seed);

  // Optional: consult release state (unreleased videos are never selected)
  // and enable feed pushes. Call before the run starts.
  void attachContext(const SystemContext& ctx) { ctx_ = &ctx; }

  // First video of a session: a subscribed channel weighted by its view
  // frequency (fallback: any channel in an interest category), then a video
  // within it by popularity rank. Pending feed entries take priority.
  [[nodiscard]] VideoId firstVideo(UserId user);

  // Next video after `current`, per the 75/15/10 rule. Pending feed entries
  // take priority.
  [[nodiscard]] VideoId nextVideo(UserId user, VideoId current);

  // A new upload appeared in a channel the user subscribes to; the user
  // will watch it at the next opportunity (YouTube homepage feed).
  void pushFeed(UserId user, VideoId video) {
    feed_[user.index()].push_back(video);
  }
  [[nodiscard]] std::size_t pendingFeed(UserId user) const {
    return feed_[user.index()].size();
  }
  // Feed entries actually watched so far.
  [[nodiscard]] std::uint64_t feedWatches() const { return feedWatches_; }

  // Serializes the per-user RNG streams, watched sets (canonical sorted
  // order; membership-only at runtime), and feed queues (verbatim order —
  // it is consumed front-to-back). Samplers and Zipf tables are pure
  // functions of the catalog and are rebuilt by construction.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  // Zipf-weighted pick inside a channel, avoiding videos `user` has already
  // watched and videos not yet released (bounded resampling; a user may
  // still rewatch when a channel is mostly exhausted). Marks the result as
  // watched.
  [[nodiscard]] VideoId pickFor(UserId user, ChannelId channel);
  // Pops the first watchable feed entry, or invalid if none.
  [[nodiscard]] VideoId popFeed(UserId user);
  [[nodiscard]] bool isReleased(VideoId video) const;
  [[nodiscard]] VideoId videoWithinChannel(Rng& rng, ChannelId channel);
  [[nodiscard]] ChannelId channelWithinCategory(Rng& rng, CategoryId category);
  [[nodiscard]] const ZipfDistribution& zipfFor(std::size_t size);

  const trace::Catalog& catalog_;
  const VodConfig& config_;
  const SystemContext* ctx_ = nullptr;
  std::vector<Rng> userRngs_;
  // Videos each user has already selected (rewatch avoidance).
  std::vector<std::unordered_set<VideoId>> watched_;
  // Per-user queue of new uploads awaiting a watch.
  std::vector<std::deque<VideoId>> feed_;
  std::uint64_t feedWatches_ = 0;
  // Per-category channel samplers weighted by view frequency.
  std::vector<WeightedSampler> categorySamplers_;
  WeightedSampler globalChannelSampler_;
  std::map<std::size_t, ZipfDistribution> zipfBySize_;
};

}  // namespace st::vod
