// Video transfer lifecycle shared by all three systems.
//
// A watch is two fluid flows: the first chunk (whose completion starts
// playback and defines the startup delay) and the body (remaining chunks,
// downloaded in the background while the user watches). Prefetches are
// single first-chunk flows. If a peer provider churns away mid-transfer the
// remaining bytes are re-requested from the origin server; chunk credit is
// split between the sources by bytes actually delivered.
//
// A user has at most one *foreground* watch (the video being played), but a
// previous watch's body may still be trickling in when the next video
// starts; such watches keep downloading in the background and still insert
// into the cache on completion.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/slot_pool.h"
#include "vod/audit.h"
#include "vod/context.h"

namespace st::vod {

class VodSystem;

class TransferManager : public sim::EventFactory, public net::FlowObserver {
 public:
  explicit TransferManager(SystemContext& ctx)
      : ctx_(ctx),
        userWatches_(ctx.catalog().userCount()),
        prefetchInFlight_(ctx.catalog().userCount(), 0) {
    ctx_.sim().registerFactory(sim::Component::kTransfer, this);
    ctx_.network().flows().addObserver(this);
  }
  ~TransferManager() override {
    ctx_.network().flows().removeObserver(this);
    if (ctx_.sim().factory(sim::Component::kTransfer) == this) {
      ctx_.sim().registerFactory(sim::Component::kTransfer, nullptr);
    }
  }
  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  // The system notified of playback/finish/prefetch outcomes. Set by the
  // system's constructor (the system owns the response to every transfer
  // event); may be null in unit tests, then outcomes are dropped.
  void setClient(VodSystem* client) { client_ = client; }

  // Tag kinds for Component::kTransfer events (snapshot format; append
  // only). kTimeout lives in the simulator queue; the other kinds ride as
  // flow completion tags and are invoked when the last byte arrives.
  static constexpr std::uint8_t kTimeoutEvent = 0;     // a = watch id
  static constexpr std::uint8_t kFirstChunkEvent = 1;  // a = watch id
  static constexpr std::uint8_t kSegmentEvent = 2;     // a = watch id, b = idx
  static constexpr std::uint8_t kPrefetchEvent = 3;    // a = flow id

  // EventFactory for Component::kTransfer.
  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override;
  void onRestored(const sim::EventTag& tag, sim::EventHandle handle) override;

  // FlowObserver: a provider endpoint dropped out from under `flow` (node
  // departure); credit what it delivered and restart the remainder from a
  // surviving extra provider or the origin server. Registered for the whole
  // manager lifetime — TransferManager owns every flow whose abort matters
  // here, and aborts of flows it doesn't know are ignored by lookup.
  void onFlowAborted(FlowId flow, std::uint64_t bytesDone) override;

  struct WatchRequest {
    UserId user;
    VideoId video;
    // Peer provider; pass UserId::invalid() to download from the server.
    UserId provider;
    // True when the first chunk is already in the local cache (prefetch hit):
    // playback starts immediately, only the body is fetched.
    bool firstChunkCached = false;
    // Additional providers holding the video; with config.bodySources > 1
    // the body is striped across them (swarming extension). Ignored when
    // bodySources == 1.
    std::vector<UserId> extraProviders;
    // When the user selected the video; startup delay is measured from here.
    sim::SimTime requestTime = 0;
    // When true, the client's watchPlaybackReady fires exactly once: either
    // playback becomes ready (timedOut = false) or the first chunk timed
    // out (timedOut = true, watch abandoned). Prefetch-hit watches report
    // playback through other means and pass false.
    bool reportPlayback = true;
  };

  // Starts a watch. Any still-running watch of the same user is demoted to a
  // background download (it completes and caches normally). Outcomes are
  // reported through the client system's watchPlaybackReady/watchFinished.
  void startWatch(WatchRequest request);

  // Prefetch the first chunk of `video` from `provider` (or the server when
  // invalid). The client's prefetchArrived(user, video, fromPeer) fires when
  // the chunk lands; silently dropped if either side churns first.
  void startPrefetch(UserId user, VideoId video, UserId provider);

  // The user left: abort their downloads and prefetches, and fail over any
  // remote downloads this user was serving to the origin server.
  void onUserOffline(UserId user);

  [[nodiscard]] std::size_t activeWatches() const { return watches_.size(); }
  [[nodiscard]] std::size_t activePrefetches() const {
    return prefetches_.size();
  }

  // Structural contract audit (see vod/audit.h): no watch or prefetch owned
  // by an offline user, and no active flow sourced from a dead peer — both
  // are maintained synchronously by onUserOffline, so every rule is instant.
  void auditInvariants(AuditReport& report) const;

  // Test-only corruption hook: registers a bare watch record for `user`
  // (no flows, no timeout) — the dangling-watch damage a lifecycle bug
  // would leave behind after a crash. The invariant checker must flag it
  // when the user is offline.
  void injectWatchForTest(UserId user, VideoId video);

  // Checkpoint/restore: the watch arena (whole slot pool, so outstanding
  // WatchIds stay stable), per-user watch lists, flow-to-watch maps,
  // prefetch records, and the backpressure tallies. Watch timeout handles
  // are re-stored by onRestored() while the simulator queue loads.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  enum class Phase { kFirstChunk, kBody };

  // One striped slice of a body download (the whole body when the stripe
  // width is 1).
  struct Segment {
    FlowId flow;
    UserId provider;               // current source (may fail over to server)
    std::uint64_t chunks = 0;      // chunk quota of this segment
    std::uint64_t bytes = 0;       // byte size (chunks x chunkBytes)
    std::uint64_t bytesDone = 0;   // delivered by earlier providers
    std::uint64_t credited = 0;    // chunks already credited
    bool done = false;
  };

  struct Watch {
    UserId user;
    VideoId video;
    UserId provider;  // first-chunk source / primary body source
    std::vector<UserId> extraProviders;
    Phase phase = Phase::kFirstChunk;
    sim::SimTime requestTime = 0;
    sim::SimTime bodyStart = 0;  // when the body phase began (continuity)
    FlowId flow;                 // first-chunk flow
    std::vector<Segment> segments;  // body stripes
    sim::EventHandle timeout;
    std::uint64_t phaseBytes = 0;      // first-chunk phase bytes
    std::uint64_t phaseBytesDone = 0;  // delivered by earlier providers
    std::uint64_t phaseCredited = 0;   // chunks already credited (first chunk)
    // True until watchPlaybackReady has been delivered (exactly once).
    bool playbackPending = false;
  };

  // Generation-stamped SlotPool id: watch records are pooled, not churned
  // through a hash map, and a stale id can never alias a recycled watch.
  using WatchId = SlotPool<Watch>::Id;

  [[nodiscard]] EndpointId sourceEndpoint(UserId provider) const;
  // Per-flow admission deadline from the overload config (0 = patient).
  [[nodiscard]] sim::SimTime admissionDeadline() const;
  void beginFirstChunk(WatchId id, UserId provider,
                       std::uint64_t bytesRemaining);
  // Splits the body into chunk-aligned segments across the watch's
  // providers and starts their flows.
  void beginBody(WatchId id);
  // False when the source's admission policy shed the flow; the watch is
  // untouched and the caller must abandon it (phaseTimeout) without holding
  // references across the call.
  [[nodiscard]] bool startSegmentFlow(WatchId id, std::size_t segmentIndex,
                                      UserId provider);
  void finishWatch(WatchId id, bool complete);
  void firstChunkComplete(WatchId id);
  void segmentComplete(WatchId id, std::size_t segmentIndex);
  void phaseTimeout(WatchId id);
  void prefetchComplete(FlowId flow);
  // Credits chunks delivered so far in the first-chunk phase.
  void creditPartialFirstChunk(Watch& watch, std::uint64_t bytesDone);
  void creditPartialSegment(const Watch& watch, Segment& segment,
                            std::uint64_t bytesDone);
  // First extra provider of the watch that is still online (and not the
  // source that just failed); invalid id = no survivor, use the server.
  [[nodiscard]] UserId pickFailoverProvider(const Watch& watch,
                                            UserId failed) const;
  void failOverToServer(FlowId flow, std::uint64_t bytesDone);
  void cancelWatchFlows(Watch& watch);
  void eraseWatch(WatchId id);

  struct Prefetch {
    UserId user;
    VideoId video;
    UserId provider;  // invalid = the origin server
    bool fromPeer = false;
  };

  void forgetPrefetch(const Prefetch& prefetch);
  // Delivers an outcome to the client system (no-op without a client).
  void reportPlaybackReady(UserId user, VideoId video, sim::SimTime delay,
                           bool timedOut);

  SystemContext& ctx_;
  VodSystem* client_ = nullptr;
  SlotPool<Watch> watches_;
  // Indexed by user; a user has at most a handful of concurrent watches.
  std::vector<std::vector<WatchId>> userWatches_;
  // Maps a flow to its watch; segment flows are found by scanning the
  // watch's (small) segment list. Flow ids are minted by the flow engine.
  // Ordered maps: iteration feeds the offline sweep and the snapshot, so
  // both are canonical by flow id.
  std::map<FlowId, WatchId> watchFlows_;
  std::map<FlowId, Prefetch> prefetches_;
  // In-flight prefetches per user, for the credit-based backpressure knob.
  // Maintained unconditionally (pure bookkeeping); consulted only when the
  // overload config sets a credit, so baseline runs are untouched.
  std::vector<std::uint32_t> prefetchInFlight_;
};

}  // namespace st::vod
