#include "vod/transfer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "vod/system.h"

namespace st::vod {

namespace {
ChunkSource sourceOf(UserId provider) {
  return provider.valid() ? ChunkSource::kPeer : ChunkSource::kServer;
}
// Chunk trace events carry the source in `subject`: 1 = peer, 0 = server.
std::uint32_t traceSource(ChunkSource source) {
  return source == ChunkSource::kPeer ? 1 : 0;
}
}  // namespace

EndpointId TransferManager::sourceEndpoint(UserId provider) const {
  return provider.valid() ? ctx_.endpointOf(provider) : ctx_.serverEndpoint();
}

sim::SimTime TransferManager::admissionDeadline() const {
  return sim::fromSeconds(ctx_.config().overload.admissionDeadlineSeconds);
}

sim::Callback TransferManager::rebuild(const sim::EventTag& tag) {
  switch (tag.kind) {
    case kTimeoutEvent:
      return [this, id = tag.a] { phaseTimeout(id); };
    case kFirstChunkEvent:
      return [this, id = tag.a] { firstChunkComplete(id); };
    case kSegmentEvent:
      return [this, id = tag.a, index = static_cast<std::size_t>(tag.b)] {
        segmentComplete(id, index);
      };
    case kPrefetchEvent:
      return [this, flow = FlowId{static_cast<std::uint32_t>(tag.a)}] {
        prefetchComplete(flow);
      };
    default:
      assert(false && "unknown transfer event kind");
      return [] {};
  }
}

void TransferManager::onRestored(const sim::EventTag& tag,
                                 sim::EventHandle handle) {
  // Only timeouts live in the simulator queue; completion tags ride inside
  // flow records and are invoked, never scheduled.
  assert(tag.kind == kTimeoutEvent);
  Watch* watch = watches_.find(tag.a);
  assert(watch != nullptr);
  watch->timeout = handle;
}

void TransferManager::reportPlaybackReady(UserId user, VideoId video,
                                          sim::SimTime delay, bool timedOut) {
  if (client_ != nullptr) {
    client_->watchPlaybackReady(user, video, delay, timedOut);
  }
}

void TransferManager::startWatch(WatchRequest request) {
  assert(!request.provider.valid() || ctx_.isOnline(request.provider));

  Watch watch;
  watch.user = request.user;
  watch.video = request.video;
  watch.provider = request.provider;
  watch.extraProviders = std::move(request.extraProviders);
  watch.requestTime = request.requestTime;
  watch.playbackPending = request.reportPlayback;

  const VideoAsset& asset = ctx_.library().asset(request.video);
  const WatchId id = watches_.insert(std::move(watch));
  userWatches_[request.user.index()].push_back(id);
  Watch& w = *watches_.find(id);

  if (request.firstChunkCached) {
    // Prefetch hit: playback starts now; only the body is fetched.
    if (w.playbackPending) {
      w.playbackPending = false;
      reportPlaybackReady(w.user, w.video, ctx_.sim().now() - w.requestTime,
                          false);
    }
    if (ctx_.library().bodyBytes(request.video) == 0) {
      finishWatch(id, true);
      return;
    }
    beginBody(id);
    return;
  }

  w.phaseBytes = asset.chunkBytes;
  w.timeout = ctx_.sim().scheduleTagged(
      ctx_.config().firstChunkTimeout,
      sim::makeTag(sim::Component::kTransfer, kTimeoutEvent, id));
  beginFirstChunk(id, w.provider, asset.chunkBytes);
}

void TransferManager::beginFirstChunk(WatchId id, UserId provider,
                                      std::uint64_t bytesRemaining) {
  Watch& watch = *watches_.find(id);
  watch.phase = Phase::kFirstChunk;
  watch.provider = provider;
  net::FlowNetwork::FlowOptions options;
  options.flowClass = provider.valid() ? net::FlowClass::kPlayback
                                       : net::FlowClass::kServerFallback;
  options.deadline = admissionDeadline();
  options.completionTag =
      sim::makeTag(sim::Component::kTransfer, kFirstChunkEvent, id);
  watch.flow = ctx_.network().flows().startFlow(
      sourceEndpoint(provider), ctx_.endpointOf(watch.user),
      std::max<std::uint64_t>(bytesRemaining, 1), options);
  if (!watch.flow.valid()) {
    // Admission control shed the request: the watch ends exactly as if its
    // first chunk had timed out — a fast, explicit rejection instead of
    // letting the viewer wait out a deadline the backlog can't meet.
    phaseTimeout(id);
    return;
  }
  watchFlows_[watch.flow] = id;
}

void TransferManager::beginBody(WatchId id) {
  Watch& watch = *watches_.find(id);
  const VideoAsset& asset = ctx_.library().asset(watch.video);
  const std::uint64_t bodyChunks = asset.chunks - 1;
  assert(bodyChunks > 0);

  watch.phase = Phase::kBody;
  watch.bodyStart = ctx_.sim().now();
  watch.timeout = ctx_.sim().scheduleTagged(
      ctx_.config().bodyDownloadTimeout,
      sim::makeTag(sim::Component::kTransfer, kTimeoutEvent, id));

  // Provider set for striping: the primary source plus any live extras,
  // bounded by the configured stripe width and by the chunk count.
  std::vector<UserId> providers = {watch.provider};
  for (const UserId extra : watch.extraProviders) {
    if (providers.size() >= ctx_.config().bodySources) break;
    if (extra == watch.provider) continue;
    if (extra.valid() && !ctx_.isOnline(extra)) continue;
    if (std::find(providers.begin(), providers.end(), extra) !=
        providers.end()) {
      continue;
    }
    providers.push_back(extra);
  }
  const std::size_t stripes = std::min<std::size_t>(
      providers.size(), static_cast<std::size_t>(bodyChunks));

  // Chunk-aligned quotas: floor split, remainder to the first segments.
  watch.segments.clear();
  watch.segments.resize(stripes);
  const std::uint64_t base = bodyChunks / stripes;
  const std::uint64_t extra = bodyChunks % stripes;
  for (std::size_t i = 0; i < stripes; ++i) {
    Segment& segment = watch.segments[i];
    segment.chunks = base + (i < extra ? 1 : 0);
    segment.bytes = segment.chunks * asset.chunkBytes;
  }
  // One batch for the whole stripe wave: with N stripes the shared
  // destination endpoint settles once, not N times.
  net::FlowNetwork::MutationBatch batch(ctx_.network().flows());
  for (std::size_t i = 0; i < stripes; ++i) {
    if (!startSegmentFlow(id, i, providers[i])) {
      // Shed at the source: abandon the watch (phaseTimeout cancels any
      // stripes already started). The watch record is gone after this, so
      // no references may be held across the call.
      phaseTimeout(id);
      return;
    }
  }
}

bool TransferManager::startSegmentFlow(WatchId id, std::size_t segmentIndex,
                                       UserId provider) {
  Watch& watch = *watches_.find(id);
  Segment& segment = watch.segments[segmentIndex];
  segment.provider = provider;
  const std::uint64_t remaining =
      segment.bytes > segment.bytesDone ? segment.bytes - segment.bytesDone
                                        : 1;
  net::FlowNetwork::FlowOptions options;
  options.flowClass = provider.valid() ? net::FlowClass::kPlayback
                                       : net::FlowClass::kServerFallback;
  options.completionTag = sim::makeTag(sim::Component::kTransfer,
                                       kSegmentEvent, id, segmentIndex);
  segment.flow = ctx_.network().flows().startFlow(
      sourceEndpoint(provider), ctx_.endpointOf(watch.user), remaining,
      options);
  if (!segment.flow.valid()) return false;
  watchFlows_[segment.flow] = id;
  return true;
}

void TransferManager::creditPartialFirstChunk(Watch& watch,
                                              std::uint64_t bytesDone) {
  const VideoAsset& asset = ctx_.library().asset(watch.video);
  const std::uint64_t done = watch.phaseBytesDone + bytesDone;
  const std::uint64_t chunksDone = done / asset.chunkBytes;
  if (chunksDone > watch.phaseCredited) {
    ctx_.metrics().recordChunks(watch.user, sourceOf(watch.provider),
                                chunksDone - watch.phaseCredited);
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kChunk, watch.user.value(),
             traceSource(sourceOf(watch.provider)),
             chunksDone - watch.phaseCredited);
    watch.phaseCredited = chunksDone;
  }
  watch.phaseBytesDone = done;
}

void TransferManager::creditPartialSegment(const Watch& watch,
                                           Segment& segment,
                                           std::uint64_t bytesDone) {
  const VideoAsset& asset = ctx_.library().asset(watch.video);
  const std::uint64_t done = segment.bytesDone + bytesDone;
  const std::uint64_t chunksDone = done / asset.chunkBytes;
  if (chunksDone > segment.credited) {
    ctx_.metrics().recordChunks(watch.user, sourceOf(segment.provider),
                                chunksDone - segment.credited);
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kChunk, watch.user.value(),
             traceSource(sourceOf(segment.provider)),
             chunksDone - segment.credited);
    segment.credited = chunksDone;
  }
  segment.bytesDone = done;
}

void TransferManager::cancelWatchFlows(Watch& watch) {
  if (watch.flow.valid()) {
    watchFlows_.erase(watch.flow);
    ctx_.network().flows().cancelFlow(watch.flow);
    watch.flow = FlowId::invalid();
  }
  for (Segment& segment : watch.segments) {
    if (segment.flow.valid()) {
      watchFlows_.erase(segment.flow);
      ctx_.network().flows().cancelFlow(segment.flow);
      segment.flow = FlowId::invalid();
    }
  }
}

void TransferManager::eraseWatch(WatchId id) {
  Watch* watch = watches_.find(id);
  assert(watch != nullptr);
  const UserId user = watch->user;
  if (watch->flow.valid()) watchFlows_.erase(watch->flow);
  for (const Segment& segment : watch->segments) {
    if (segment.flow.valid()) watchFlows_.erase(segment.flow);
  }
  ctx_.sim().cancel(watch->timeout);
  watches_.erase(id);
  auto& list = userWatches_[user.index()];
  list.erase(std::find(list.begin(), list.end(), id));
}

void TransferManager::finishWatch(WatchId id, bool complete) {
  Watch& watch = *watches_.find(id);
  const UserId user = watch.user;
  const VideoId video = watch.video;
  eraseWatch(id);
  if (client_ != nullptr) client_->watchFinished(user, video, complete);
}

void TransferManager::firstChunkComplete(WatchId id) {
  Watch* found = watches_.find(id);
  assert(found != nullptr);
  Watch& watch = *found;
  watchFlows_.erase(watch.flow);
  watch.flow = FlowId::invalid();

  if (1 > watch.phaseCredited) {
    ctx_.metrics().recordChunks(watch.user, sourceOf(watch.provider),
                                1 - watch.phaseCredited);
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kChunk, watch.user.value(),
             traceSource(sourceOf(watch.provider)), 1 - watch.phaseCredited);
  }
  ctx_.sim().cancel(watch.timeout);
  watch.timeout = sim::EventHandle{};
  if (watch.provider.valid()) {
    ctx_.reportNeighborSuccess(watch.user, watch.provider);
  }

  if (watch.playbackPending) {
    watch.playbackPending = false;
    reportPlaybackReady(watch.user, watch.video,
                        ctx_.sim().now() - watch.requestTime, false);
  }
  if (ctx_.library().bodyBytes(watch.video) == 0) {
    finishWatch(id, true);
    return;
  }
  beginBody(id);
}

void TransferManager::segmentComplete(WatchId id, std::size_t segmentIndex) {
  Watch* found = watches_.find(id);
  assert(found != nullptr);
  Watch& watch = *found;
  Segment& segment = watch.segments[segmentIndex];
  watchFlows_.erase(segment.flow);
  segment.flow = FlowId::invalid();
  segment.done = true;
  if (segment.chunks > segment.credited) {
    ctx_.metrics().recordChunks(watch.user, sourceOf(segment.provider),
                                segment.chunks - segment.credited);
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kChunk, watch.user.value(),
             traceSource(sourceOf(segment.provider)),
             segment.chunks - segment.credited);
    segment.credited = segment.chunks;
  }
  if (segment.provider.valid()) {
    ctx_.reportNeighborSuccess(watch.user, segment.provider);
  }

  for (const Segment& other : watch.segments) {
    if (!other.done) return;  // stripes still in flight
  }

  // Whole body landed. Continuity check: a body that took longer than the
  // video's runtime would have stalled playback at least once.
  ctx_.sim().cancel(watch.timeout);
  watch.timeout = sim::EventHandle{};
  const VideoAsset& asset = ctx_.library().asset(watch.video);
  const double bodySeconds =
      sim::toSeconds(ctx_.sim().now() - watch.bodyStart);
  const bool onTime = bodySeconds <= asset.lengthSeconds + 1e-9;
  ctx_.metrics().countBodyCompletion(onTime);
  ctx_.metrics().recordPlayback(asset.lengthSeconds);
  if (!onTime) {
    ctx_.metrics().recordStall(bodySeconds - asset.lengthSeconds);
    ST_TRACE(ctx_.trace(), ctx_.sim().now(), kRebuffer, watch.user.value(),
             watch.video.value(), 0);
  }
  finishWatch(id, true);
}

void TransferManager::phaseTimeout(WatchId id) {
  Watch* found = watches_.find(id);
  if (found == nullptr) return;
  Watch& watch = *found;
  cancelWatchFlows(watch);
  if (watch.phase == Phase::kFirstChunk && watch.playbackPending) {
    watch.playbackPending = false;
    reportPlaybackReady(watch.user, watch.video,
                        ctx_.sim().now() - watch.requestTime, true);
  }
  finishWatch(id, false);
}

void TransferManager::startPrefetch(UserId user, VideoId video,
                                    UserId provider) {
  assert(!provider.valid() || ctx_.isOnline(provider));
  // Backpressure: speculative fetches yield when the user's credit is spent
  // or their downlink is already busy with real downloads.
  const OverloadConfig& overload = ctx_.config().overload;
  if ((overload.prefetchCredit > 0 &&
       prefetchInFlight_[user.index()] >= overload.prefetchCredit) ||
      (overload.contentionThreshold > 0 &&
       ctx_.network().flows().activeDownloads(ctx_.endpointOf(user)) >=
           overload.contentionThreshold)) {
    ctx_.metrics().countPrefetchThrottled();
    return;
  }
  const VideoAsset& asset = ctx_.library().asset(video);
  ctx_.metrics().countPrefetchIssued();
  ST_TRACE(ctx_.trace(), ctx_.sim().now(), kPrefetchIssue, user.value(),
           video.value(), provider.valid() ? 1 : 0);
  Prefetch prefetch;
  prefetch.user = user;
  prefetch.video = video;
  prefetch.provider = provider;
  prefetch.fromPeer = provider.valid();
  net::FlowNetwork::FlowOptions options;
  options.flowClass = net::FlowClass::kPrefetch;
  const FlowId flow = ctx_.network().flows().startFlow(
      sourceEndpoint(provider), ctx_.endpointOf(user), asset.chunkBytes,
      options);
  if (!flow.valid()) return;  // shed at the source; silently dropped
  // The completion tag needs the flow id startFlow just assigned; flows
  // never complete synchronously, so attaching it afterwards is race-free.
  ctx_.network().flows().setCompletionTag(
      flow,
      sim::makeTag(sim::Component::kTransfer, kPrefetchEvent, flow.value()));
  ++prefetchInFlight_[user.index()];
  prefetches_.emplace(flow, prefetch);
}

void TransferManager::forgetPrefetch(const Prefetch& prefetch) {
  std::uint32_t& inFlight = prefetchInFlight_[prefetch.user.index()];
  assert(inFlight > 0);
  if (inFlight > 0) --inFlight;
}

void TransferManager::prefetchComplete(FlowId flow) {
  const auto it = prefetches_.find(flow);
  if (it == prefetches_.end()) return;
  const Prefetch prefetch = it->second;
  prefetches_.erase(it);
  forgetPrefetch(prefetch);
  if (prefetch.provider.valid()) {
    ctx_.reportNeighborSuccess(prefetch.user, prefetch.provider);
  }
  ctx_.metrics().recordChunks(
      prefetch.user,
      prefetch.fromPeer ? ChunkSource::kPeer : ChunkSource::kServer, 1);
  if (client_ != nullptr) {
    client_->prefetchArrived(prefetch.user, prefetch.video, prefetch.fromPeer);
  }
}

void TransferManager::onUserOffline(UserId user) {
  // A departure cancels and re-sources many flows at once; one batch settles
  // every surviving flow at the touched endpoints a single time when the
  // scope closes (the failover startFlows triggered by onFlowAborted land
  // inside dropEndpointFlows' own nested batch and join it too).
  net::FlowNetwork::MutationBatch batch(ctx_.network().flows());

  // 1. The user's own watches die silently (no callbacks — the user left).
  const std::vector<WatchId> own =
      userWatches_[user.index()];  // copy: eraseWatch mutates
  for (const WatchId id : own) {
    cancelWatchFlows(*watches_.find(id));
    eraseWatch(id);
  }

  // 2. The user's own prefetch downloads die silently.
  std::vector<FlowId> ownPrefetches;
  for (const auto& [flow, prefetch] : prefetches_) {
    if (prefetch.user == user) ownPrefetches.push_back(flow);
  }
  for (const FlowId flow : ownPrefetches) {
    ctx_.network().flows().cancelFlow(flow);
    const auto it = prefetches_.find(flow);
    forgetPrefetch(it->second);
    prefetches_.erase(it);
  }

  // 3. Remote downloads this user was serving fail over to the server;
  //    remote prefetches it was serving are dropped (onFlowAborted).
  ctx_.network().flows().dropEndpointFlows(ctx_.endpointOf(user));
}

void TransferManager::onFlowAborted(FlowId flow, std::uint64_t bytesDone) {
  failOverToServer(flow, bytesDone);
}

UserId TransferManager::pickFailoverProvider(const Watch& watch,
                                             UserId failed) const {
  for (const UserId extra : watch.extraProviders) {
    if (!extra.valid() || extra == failed) continue;
    if (ctx_.isOnline(extra)) return extra;
  }
  return UserId::invalid();
}

void TransferManager::failOverToServer(FlowId flow, std::uint64_t bytesDone) {
  const auto prefetchIt = prefetches_.find(flow);
  if (prefetchIt != prefetches_.end()) {
    const Prefetch prefetch = std::move(prefetchIt->second);
    prefetches_.erase(prefetchIt);
    forgetPrefetch(prefetch);
    if (prefetch.provider.valid()) {
      ctx_.reportNeighborFailure(prefetch.user, prefetch.provider);
    }
    return;
  }
  const auto flowIt = watchFlows_.find(flow);
  if (flowIt == watchFlows_.end()) return;
  const WatchId id = flowIt->second;
  watchFlows_.erase(flowIt);
  Watch& watch = *watches_.find(id);

  // The source crashed mid-transfer: credit what it delivered, then restart
  // the remainder from a surviving extra provider if one is known, else
  // from the origin server.
  if (watch.phase == Phase::kFirstChunk && watch.flow == flow) {
    const UserId failed = watch.provider;
    watch.flow = FlowId::invalid();
    creditPartialFirstChunk(watch, bytesDone);
    const std::uint64_t remaining =
        watch.phaseBytes > watch.phaseBytesDone
            ? watch.phaseBytes - watch.phaseBytesDone
            : 1;
    ctx_.metrics().countTransferResourced();
    if (failed.valid()) ctx_.reportNeighborFailure(watch.user, failed);
    // May shed and abandon the watch internally; watch is dead after this.
    beginFirstChunk(id, pickFailoverProvider(watch, failed), remaining);
    return;
  }

  // Body segment: restart the affected stripe.
  for (std::size_t i = 0; i < watch.segments.size(); ++i) {
    Segment& segment = watch.segments[i];
    if (segment.flow != flow) continue;
    const UserId failed = segment.provider;
    segment.flow = FlowId::invalid();
    creditPartialSegment(watch, segment, bytesDone);
    ctx_.metrics().countTransferResourced();
    if (failed.valid()) ctx_.reportNeighborFailure(watch.user, failed);
    if (!startSegmentFlow(id, i, pickFailoverProvider(watch, failed))) {
      phaseTimeout(id);  // shed: abandon the watch
    }
    return;
  }
}

// --- checkpoint/restore -------------------------------------------------------

void TransferManager::saveState(snapshot::Writer& w) const {
  w.section(0x52454658);  // "XFER"
  w.u64(watches_.slotCount());
  watches_.visitSlots([&w](std::uint32_t, bool live, std::uint32_t gen,
                           std::uint32_t nextFree, const Watch& watch) {
    w.boolean(live);
    w.u32(gen);
    w.u32(nextFree);
    if (!live) return;
    w.u32(watch.user.value());
    w.u32(watch.video.value());
    w.u32(watch.provider.value());
    w.u64(watch.extraProviders.size());
    for (const UserId extra : watch.extraProviders) w.u32(extra.value());
    w.u8(static_cast<std::uint8_t>(watch.phase));
    w.i64(watch.requestTime);
    w.i64(watch.bodyStart);
    w.u32(watch.flow.value());
    w.u64(watch.segments.size());
    for (const Segment& segment : watch.segments) {
      w.u32(segment.flow.value());
      w.u32(segment.provider.value());
      w.u64(segment.chunks);
      w.u64(segment.bytes);
      w.u64(segment.bytesDone);
      w.u64(segment.credited);
      w.boolean(segment.done);
    }
    w.u64(watch.phaseBytes);
    w.u64(watch.phaseBytesDone);
    w.u64(watch.phaseCredited);
    w.boolean(watch.playbackPending);
  });
  w.u32(watches_.freeHead());
  w.u64(userWatches_.size());
  for (const std::vector<WatchId>& list : userWatches_) {
    w.u64(list.size());
    for (const WatchId id : list) w.u64(id);
  }
  w.u64(watchFlows_.size());
  for (const auto& [flow, id] : watchFlows_) {
    w.u32(flow.value());
    w.u64(id);
  }
  w.u64(prefetches_.size());
  for (const auto& [flow, prefetch] : prefetches_) {
    w.u32(flow.value());
    w.u32(prefetch.user.value());
    w.u32(prefetch.video.value());
    w.u32(prefetch.provider.value());
    w.boolean(prefetch.fromPeer);
  }
  w.u64(prefetchInFlight_.size());
  for (const std::uint32_t inFlight : prefetchInFlight_) w.u32(inFlight);
}

bool TransferManager::loadState(snapshot::Reader& r) {
  r.section(0x52454658, "transfer manager");
  const std::size_t slotCount = r.count(1 + 4 + 4);
  if (!r.ok()) return false;
  watches_.beginRestore();
  for (std::size_t i = 0; i < slotCount; ++i) {
    const bool live = r.boolean();
    const std::uint32_t gen = r.u32();
    const std::uint32_t nextFree = r.u32();
    Watch watch;
    if (live) {
      watch.user = UserId{r.u32()};
      watch.video = VideoId{r.u32()};
      watch.provider = UserId{r.u32()};
      watch.extraProviders.resize(r.count(4));
      for (UserId& extra : watch.extraProviders) extra = UserId{r.u32()};
      const std::uint8_t phase = r.u8();
      watch.requestTime = r.i64();
      watch.bodyStart = r.i64();
      watch.flow = FlowId{r.u32()};
      watch.segments.resize(r.count(4 + 4 + 8 + 8 + 8 + 8 + 1));
      for (Segment& segment : watch.segments) {
        segment.flow = FlowId{r.u32()};
        segment.provider = UserId{r.u32()};
        segment.chunks = r.u64();
        segment.bytes = r.u64();
        segment.bytesDone = r.u64();
        segment.credited = r.u64();
        segment.done = r.boolean();
      }
      watch.phaseBytes = r.u64();
      watch.phaseBytesDone = r.u64();
      watch.phaseCredited = r.u64();
      watch.playbackPending = r.boolean();
      if (!r.ok()) return false;
      if (phase > static_cast<std::uint8_t>(Phase::kBody) ||
          watch.user.index() >= userWatches_.size()) {
        r.fail("watch record out of range");
        return false;
      }
      watch.phase = static_cast<Phase>(phase);
    }
    if (!r.ok()) return false;
    watches_.restoreSlot(live, gen, nextFree, std::move(watch));
  }
  const std::uint32_t freeHead = r.u32();
  if (!r.ok()) return false;
  if (!watches_.finishRestore(freeHead)) {
    r.fail("watch arena free list corrupt");
    return false;
  }
  const std::size_t users = r.count(8);
  if (!r.ok() || users != userWatches_.size()) {
    r.fail("transfer user count mismatch");
    return false;
  }
  for (std::vector<WatchId>& list : userWatches_) {
    list.resize(r.count(8));
    for (WatchId& id : list) {
      id = r.u64();
      if (!r.ok()) return false;
      if (watches_.find(id) == nullptr) {
        r.fail("user watch list references a stale watch id");
        return false;
      }
    }
  }
  const std::size_t flowCount = r.count(4 + 8);
  watchFlows_.clear();
  for (std::size_t i = 0; i < flowCount; ++i) {
    const FlowId flow{r.u32()};
    const WatchId id = r.u64();
    if (!r.ok()) return false;
    if (watches_.find(id) == nullptr) {
      r.fail("flow map references a stale watch id");
      return false;
    }
    watchFlows_.emplace(flow, id);
  }
  const std::size_t prefetchCount = r.count(4 + 4 + 4 + 4 + 1);
  prefetches_.clear();
  for (std::size_t i = 0; i < prefetchCount; ++i) {
    const FlowId flow{r.u32()};
    Prefetch prefetch;
    prefetch.user = UserId{r.u32()};
    prefetch.video = VideoId{r.u32()};
    prefetch.provider = UserId{r.u32()};
    prefetch.fromPeer = r.boolean();
    if (!r.ok()) return false;
    if (prefetch.user.index() >= prefetchInFlight_.size()) {
      r.fail("prefetch record out of range");
      return false;
    }
    prefetches_.emplace(flow, prefetch);
  }
  const std::size_t inFlightCount = r.count(4);
  if (!r.ok() || inFlightCount != prefetchInFlight_.size()) {
    r.fail("prefetch tally count mismatch");
    return false;
  }
  for (std::uint32_t& inFlight : prefetchInFlight_) inFlight = r.u32();
  return r.ok();
}

// --- invariant audit ----------------------------------------------------------

void TransferManager::auditInvariants(AuditReport& report) const {
  for (std::size_t u = 0; u < userWatches_.size(); ++u) {
    const UserId user{static_cast<std::uint32_t>(u)};
    const bool online = ctx_.isOnline(user);
    for (const WatchId id : userWatches_[u]) {
      const Watch* watch = watches_.find(id);
      if (watch == nullptr) {
        report.violate("tm.dangling_watch_id", user.value(), 0);
        continue;
      }
      if (watch->user != user) {
        report.violate("tm.watch_owner", user.value(), watch->user.value());
      }
      if (!online) {
        // onUserOffline erases the departing user's watches synchronously.
        report.violate("tm.offline_watch", user.value(),
                       watch->video.value());
        continue;
      }
      // Every active flow must be fed by the server or a live peer
      // (dropEndpointFlows fails dead sources over synchronously).
      if (watch->flow.valid() && watch->provider.valid() &&
          !ctx_.isOnline(watch->provider)) {
        report.violate("tm.dead_provider", user.value(),
                       watch->provider.value());
      }
      for (const Segment& segment : watch->segments) {
        if (segment.flow.valid() && segment.provider.valid() &&
            !ctx_.isOnline(segment.provider)) {
          report.violate("tm.dead_provider", user.value(),
                         segment.provider.value());
        }
      }
    }
  }
  for (const auto& [flow, prefetch] : prefetches_) {
    if (!ctx_.isOnline(prefetch.user)) {
      report.violate("tm.offline_prefetch", prefetch.user.value(),
                     prefetch.video.value());
    }
  }
}

void TransferManager::injectWatchForTest(UserId user, VideoId video) {
  Watch watch;
  watch.user = user;
  watch.video = video;
  const WatchId id = watches_.insert(std::move(watch));
  userWatches_[user.index()].push_back(id);
}

}  // namespace st::vod
