// Interface every VoD system implements (SocialTube, NetTube, PA-VoD).
//
// The SessionDriver owns the user lifecycle and calls down; the system calls
// back through the playback callback when the requested video is ready to
// play (or timed out). This keeps the workload generator identical across
// systems — the only thing that differs is how providers are found.
#pragma once

#include <functional>
#include <string_view>

#include "sim/time.h"
#include "util/strong_id.h"
#include "vod/audit.h"

namespace st::vod {

class VodSystem {
 public:
  // (user, video, startup delay, timedOut). When timedOut is true the watch
  // was abandoned (no playback).
  using PlaybackCallback =
      std::function<void(UserId, VideoId, sim::SimTime, bool)>;

  virtual ~VodSystem() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  void setPlaybackCallback(PlaybackCallback callback) {
    playbackReady_ = std::move(callback);
  }

  // Session lifecycle (driven by SessionDriver; context online flags are
  // already updated when these run).
  virtual void onLogin(UserId user) = 0;
  virtual void onLogout(UserId user, bool graceful) = 0;

  // The user selected `video`; find a provider, download, and fire the
  // playback callback exactly once.
  virtual void requestVideo(UserId user, VideoId video) = 0;

  // Playback of the user's current video finished (PA-VoD uses this to
  // unregister the watcher; others ignore it).
  virtual void onPlaybackComplete(UserId user, VideoId video) {
    (void)user;
    (void)video;
  }

  // --- transfer lifecycle hooks -------------------------------------------------
  // Invoked by the TransferManager (which holds this system as its client)
  // instead of per-watch closures, so in-flight transfers survive a
  // checkpoint/restore. The default reports playback and ignores the rest;
  // systems override to trigger prefetching and caching.
  virtual void watchPlaybackReady(UserId user, VideoId video,
                                  sim::SimTime delay, bool timedOut) {
    notifyPlayback(user, video, delay, timedOut);
  }
  // The watch ended; complete = full video downloaded (cacheable). Not
  // called when the user goes offline mid-download.
  virtual void watchFinished(UserId user, VideoId video, bool complete) {
    (void)user;
    (void)video;
    (void)complete;
  }
  // A prefetched first chunk landed at `user`.
  virtual void prefetchArrived(UserId user, VideoId video, bool fromPeer) {
    (void)user;
    (void)video;
    (void)fromPeer;
  }

  // Per-node overlay state, read together once per watched video.
  struct NodeStats {
    // Overlay links the node currently maintains (Fig. 18 metric).
    std::size_t links = 0;
    // Links that are redundant — a second (or later) link between the same
    // pair of nodes held in a different overlay. Only NetTube can have
    // these ("two nodes may be connected by redundant links", §IV-C).
    std::size_t redundantLinks = 0;
  };

  // System-wide state, sampled periodically by the runner.
  struct SystemStats {
    // Size of the state the origin server keeps for this system — (user,
    // key) registrations. §IV-A argues SocialTube's per-channel tracking
    // is far smaller than NetTube's per-video tracking.
    std::size_t serverRegistrations = 0;
  };

  [[nodiscard]] virtual NodeStats nodeStats(UserId user) const = 0;
  [[nodiscard]] virtual SystemStats statsSnapshot() const { return {}; }

  // Walks the system's overlay/directory state and appends every structural
  // contract breach to `report` (see vod/audit.h for the severity model).
  // Driven by fault::InvariantChecker; the default has nothing to check.
  virtual void auditInvariants(AuditReport& report) const { (void)report; }

 protected:
  void notifyPlayback(UserId user, VideoId video, sim::SimTime delay,
                      bool timedOut) {
    if (playbackReady_) playbackReady_(user, video, delay, timedOut);
  }

 private:
  PlaybackCallback playbackReady_;
};

}  // namespace st::vod
