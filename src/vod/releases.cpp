#include "vod/releases.h"

#include <cassert>

#include "util/distributions.h"

namespace st::vod {

ReleaseManager::ReleaseManager(SystemContext& ctx, VideoSelector& selector,
                               double feedWatchProbability,
                               std::uint64_t seed)
    : ctx_(ctx),
      selector_(selector),
      feedWatchProbability_(feedWatchProbability),
      rng_(Rng::forPurpose(seed, "releases")) {}

void ReleaseManager::schedule(std::vector<ReleasePlanEntry> plan) {
  for (const ReleasePlanEntry& entry : plan) {
    ctx_.setReleased(entry.video, false);
  }
  for (const ReleasePlanEntry& entry : plan) {
    ctx_.sim().scheduleAt(entry.at,
                          [this, video = entry.video] { release(video); });
  }
}

void ReleaseManager::release(VideoId video) {
  ctx_.setReleased(video, true);
  ++releasesFired_;
  // The feed reaches every subscriber of the channel (their homepage shows
  // the upload even if they are offline right now); a sampled subset will
  // actually watch it.
  const trace::Channel& channel =
      ctx_.catalog().channel(ctx_.catalog().video(video).channel);
  for (const UserId subscriber : channel.subscribers) {
    if (rng_.bernoulli(feedWatchProbability_)) {
      selector_.pushFeed(subscriber, video);
      ++feedNotifications_;
    }
  }
}

std::vector<ReleasePlanEntry> ReleaseManager::uniformPlan(
    const trace::Catalog& catalog, std::size_t perChannel,
    sim::SimTime windowStart, sim::SimTime windowEnd, std::uint64_t seed,
    std::size_t minChannelSize) {
  assert(windowStart <= windowEnd);
  Rng rng = Rng::forPurpose(seed, "release-plan");
  std::vector<ReleasePlanEntry> plan;
  for (const trace::Channel& channel : catalog.channels()) {
    if (channel.videos.size() <= minChannelSize) continue;
    // Distinct ranks in [1, n): the channel's top video stays released.
    std::vector<std::size_t> ranks =
        sampleDistinct(rng, channel.videos.size() - 1,
                       std::min(perChannel, channel.videos.size() - 1));
    for (const std::size_t offset : ranks) {
      const sim::SimTime at =
          windowStart + static_cast<sim::SimTime>(rng.uniform() *
                                                  static_cast<double>(
                                                      windowEnd - windowStart));
      plan.push_back({channel.videos[offset + 1], at});
    }
  }
  return plan;
}

}  // namespace st::vod
