#include "vod/releases.h"

#include <cassert>

#include "util/distributions.h"

namespace st::vod {

ReleaseManager::ReleaseManager(SystemContext& ctx, VideoSelector& selector,
                               double feedWatchProbability,
                               std::uint64_t seed)
    : ctx_(ctx),
      selector_(selector),
      feedWatchProbability_(feedWatchProbability),
      rng_(Rng::forPurpose(seed, "releases")) {
  ctx_.sim().registerFactory(sim::Component::kReleases, this);
}

ReleaseManager::~ReleaseManager() {
  if (ctx_.sim().factory(sim::Component::kReleases) == this) {
    ctx_.sim().registerFactory(sim::Component::kReleases, nullptr);
  }
}

sim::Callback ReleaseManager::rebuild(const sim::EventTag& tag) {
  assert(tag.kind == kReleaseEvent && "unknown release event kind");
  const VideoId video{static_cast<std::uint32_t>(tag.a)};
  return [this, video] { release(video); };
}

void ReleaseManager::schedule(std::vector<ReleasePlanEntry> plan) {
  for (const ReleasePlanEntry& entry : plan) {
    ctx_.setReleased(entry.video, false);
  }
  for (const ReleasePlanEntry& entry : plan) {
    ctx_.sim().scheduleAtTagged(
        entry.at, sim::makeTag(sim::Component::kReleases, kReleaseEvent,
                               entry.video.value()));
  }
}

void ReleaseManager::release(VideoId video) {
  ctx_.setReleased(video, true);
  ++releasesFired_;
  // The feed reaches every subscriber of the channel (their homepage shows
  // the upload even if they are offline right now); a sampled subset will
  // actually watch it.
  const trace::Channel& channel =
      ctx_.catalog().channel(ctx_.catalog().video(video).channel);
  for (const UserId subscriber : channel.subscribers) {
    if (rng_.bernoulli(feedWatchProbability_)) {
      selector_.pushFeed(subscriber, video);
      ++feedNotifications_;
    }
  }
}

void ReleaseManager::saveState(snapshot::Writer& w) const {
  w.section(0x534c4552);  // "RELS"
  const Rng::State rng = rng_.state();
  for (const std::uint64_t word : rng.s) w.u64(word);
  w.f64(rng.spareNormal);
  w.boolean(rng.hasSpareNormal);
  w.u64(releasesFired_);
  w.u64(feedNotifications_);
}

bool ReleaseManager::loadState(snapshot::Reader& r) {
  r.section(0x534c4552, "release manager");
  Rng::State rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.spareNormal = r.f64();
  rng.hasSpareNormal = r.boolean();
  const std::uint64_t fired = r.u64();
  const std::uint64_t notified = r.u64();
  if (!r.ok()) return false;
  rng_.setState(rng);
  releasesFired_ = static_cast<std::size_t>(fired);
  feedNotifications_ = static_cast<std::size_t>(notified);
  return true;
}

std::vector<ReleasePlanEntry> ReleaseManager::uniformPlan(
    const trace::Catalog& catalog, std::size_t perChannel,
    sim::SimTime windowStart, sim::SimTime windowEnd, std::uint64_t seed,
    std::size_t minChannelSize) {
  assert(windowStart <= windowEnd);
  Rng rng = Rng::forPurpose(seed, "release-plan");
  std::vector<ReleasePlanEntry> plan;
  for (const trace::Channel& channel : catalog.channels()) {
    if (channel.videos.size() <= minChannelSize) continue;
    // Distinct ranks in [1, n): the channel's top video stays released.
    std::vector<std::size_t> ranks =
        sampleDistinct(rng, channel.videos.size() - 1,
                       std::min(perChannel, channel.videos.size() - 1));
    for (const std::size_t offset : ranks) {
      const sim::SimTime at =
          windowStart + static_cast<sim::SimTime>(rng.uniform() *
                                                  static_cast<double>(
                                                      windowEnd - windowStart));
      plan.push_back({channel.videos[offset + 1], at});
    }
  }
  return plan;
}

}  // namespace st::vod
