#include "vod/library.h"

#include <algorithm>
#include <cmath>

namespace st::vod {

VideoLibrary::VideoLibrary(const trace::Catalog& catalog,
                           const VodConfig& config) {
  assets_.reserve(catalog.videoCount());
  for (const trace::Video& video : catalog.videos()) {
    VideoAsset asset;
    asset.id = video.id;
    asset.lengthSeconds = video.lengthSeconds;
    asset.chunks = std::max<std::uint32_t>(config.chunksPerVideo, 1);
    const double total = video.lengthSeconds * config.bitrateBps / 8.0;
    asset.chunkBytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(total / asset.chunks)));
    asset.totalBytes = asset.chunkBytes * asset.chunks;
    assets_.push_back(asset);
  }
}

}  // namespace st::vod
