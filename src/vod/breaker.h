// Per-neighbor circuit breakers shared by all three systems.
//
// Every (owner, neighbor) pair carries a suspicion counter fed by probe,
// search, and transfer failures. Reaching the threshold opens the breaker:
// the neighbor is excluded from provider selection and flood forwarding
// until the cooldown elapses, after which a single half-open trial is
// allowed — a success closes the breaker, another failure re-opens it.
// State is keyed by the *owner's* observations, so one node's bad luck
// never poisons another node's view, and it survives the owner's own
// logout (memory of flaky neighbors is the point).
//
// Disabled (threshold 0) the board is pure dead weight: allowed() returns
// true without mutating anything, record*() are no-ops — runs stay
// bitwise-identical to a build without it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "snapshot/codec.h"
#include "util/strong_id.h"

namespace st::vod {

class BreakerBoard {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  BreakerBoard(std::size_t userCount, std::size_t threshold,
               sim::SimTime cooldown)
      : threshold_(threshold), cooldown_(cooldown), byOwner_(userCount) {}
  BreakerBoard(const BreakerBoard&) = delete;
  BreakerBoard& operator=(const BreakerBoard&) = delete;

  [[nodiscard]] bool enabled() const { return threshold_ > 0; }

  // True when traffic to `neighbor` is allowed. An open breaker past its
  // cooldown transitions to half-open (one trial) as a side effect.
  bool allowed(UserId owner, UserId neighbor, sim::SimTime now);

  // Returns true when this failure *opened* (or re-opened) the breaker.
  bool recordFailure(UserId owner, UserId neighbor, sim::SimTime now);
  // Returns true when this success *closed* a previously open breaker.
  bool recordSuccess(UserId owner, UserId neighbor);

  [[nodiscard]] State state(UserId owner, UserId neighbor) const;

  // Lifetime tallies for the breaker.* gauges.
  [[nodiscard]] std::uint64_t opened() const { return opened_; }
  [[nodiscard]] std::uint64_t closed() const { return closed_; }
  [[nodiscard]] std::uint64_t halfOpened() const { return halfOpened_; }
  // Breakers currently not closed (open or half-open).
  [[nodiscard]] std::uint64_t openNow() const { return openNow_; }

  // Checkpoint/restore. Entry order within an owner's list is preserved
  // (entry() scans linearly; order is creation order and must round-trip).
  void saveState(snapshot::Writer& w) const {
    w.section(0x424b5242);  // "BRKB"
    w.u64(byOwner_.size());
    for (const auto& entries : byOwner_) {
      w.u64(entries.size());
      for (const Entry& e : entries) {
        w.u32(e.neighbor.value());
        w.u32(e.failures);
        w.u8(static_cast<std::uint8_t>(e.state));
        w.i64(e.retryAt);
      }
    }
    w.u64(opened_);
    w.u64(closed_);
    w.u64(halfOpened_);
    w.u64(openNow_);
  }
  bool loadState(snapshot::Reader& r) {
    r.section(0x424b5242, "breaker board");
    const std::size_t owners = r.count(8);
    if (!r.ok() || owners != byOwner_.size()) {
      r.fail("breaker board size mismatch");
      return false;
    }
    for (auto& entries : byOwner_) {
      entries.clear();
      entries.resize(r.count(17));
      for (Entry& e : entries) {
        e.neighbor = UserId{r.u32()};
        e.failures = r.u32();
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(State::kHalfOpen)) {
          r.fail("breaker state out of range");
          return false;
        }
        e.state = static_cast<State>(state);
        e.retryAt = r.i64();
      }
    }
    opened_ = r.u64();
    closed_ = r.u64();
    halfOpened_ = r.u64();
    openNow_ = r.u64();
    return r.ok();
  }

 private:
  struct Entry {
    UserId neighbor;
    std::uint32_t failures = 0;
    State state = State::kClosed;
    sim::SimTime retryAt = 0;  // open -> half-open transition time
  };

  // Finds or creates the owner's entry for `neighbor`. Small linear lists:
  // a node only ever suspects a handful of neighbors.
  Entry& entry(UserId owner, UserId neighbor);
  [[nodiscard]] const Entry* findEntry(UserId owner, UserId neighbor) const;

  std::size_t threshold_;
  sim::SimTime cooldown_;
  std::vector<std::vector<Entry>> byOwner_;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t halfOpened_ = 0;
  std::uint64_t openNow_ = 0;
};

}  // namespace st::vod
