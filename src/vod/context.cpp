#include "vod/context.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace st::vod {

SystemContext::SystemContext(sim::Simulator& simulator, net::Network& network,
                             const trace::Catalog& catalog,
                             const VideoLibrary& library,
                             const VodConfig& config, Metrics& metrics,
                             std::uint64_t seed)
    : sim_(simulator),
      network_(network),
      catalog_(catalog),
      library_(library),
      config_(config),
      metrics_(metrics),
      rng_(Rng::forPurpose(seed, "protocol")),
      breakers_(catalog.userCount(), config.overload.breakerThreshold,
                config.overload.breakerCooldown),
      serverEndpoint_{static_cast<std::uint32_t>(catalog.userCount())},
      online_(catalog.userCount(), 0),
      offlineSince_(catalog.userCount(), 0),
      released_(catalog.videoCount(), 1) {
  // Register endpoints: one per user plus the origin server.
  for (std::size_t i = 0; i < catalog.userCount(); ++i) {
    network_.addEndpoint(EndpointId{static_cast<std::uint32_t>(i)},
                         {config.peerUploadBps, config.peerDownloadBps});
  }
  network_.addEndpoint(serverEndpoint_,
                       {config.serverUploadBps, config.serverUploadBps});
  // The origin server admits a bounded number of concurrent streams (each
  // then sustains at least half the video bitrate); excess requests queue.
  // See FlowNetwork::setUploadConcurrencyLimit.
  const auto streamSlots = static_cast<std::size_t>(
      std::max(4.0, 2.0 * config.serverUploadBps / config.bitrateBps));
  network_.flows().setUploadConcurrencyLimit(serverEndpoint_, streamSlots);
  // Community sharding: derive each user's home key from the catalog and
  // route deliveries onto the receiver's shard (DESIGN.md §13). The key is
  // deterministic in the catalog alone, so it is identical at every shard
  // count (and in the serial --shards 1 merge).
  if (simulator.sharded()) {
    const auto categories = catalog.categoryCount();
    assert(categories > 0);
    homeKey_.resize(catalog.userCount());
    for (std::size_t i = 0; i < homeKey_.size(); ++i) {
      const trace::User& user = catalog.users()[i];
      const std::uint32_t category =
          user.interests.empty()
              ? static_cast<std::uint32_t>(i % categories)
              : user.interests.front().index();
      homeKey_[i] = 1 + category;
    }
    network_.setShardRouter(this);
  }
  // Overload-control policies (inert unless --overload enables them).
  if (config.overload.playbackFloorBps > 0.0) {
    network_.flows().setPlaybackFloor(config.overload.playbackFloorBps);
  }
  if (config.overload.admissionEnabled()) {
    net::FlowNetwork::AdmissionPolicy policy;
    policy.queueCap = config.overload.serverQueueCap;
    policy.shedPrefetch = true;
    network_.flows().setAdmissionPolicy(serverEndpoint_, policy);
  }
}

bool SystemContext::neighborAllowed(UserId owner, UserId neighbor) {
  if (!breakers_.enabled()) return true;
  const bool wasOpen =
      breakers_.state(owner, neighbor) == BreakerBoard::State::kOpen;
  const bool ok = breakers_.allowed(owner, neighbor, sim_.now());
  if (wasOpen && ok) {
    // The open breaker just granted its half-open trial.
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 2);
  }
  return ok;
}

void SystemContext::reportNeighborFailure(UserId owner, UserId neighbor) {
  if (breakers_.recordFailure(owner, neighbor, sim_.now())) {
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 1);
  }
}

void SystemContext::reportNeighborSuccess(UserId owner, UserId neighbor) {
  if (breakers_.recordSuccess(owner, neighbor)) {
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 0);
  }
}

std::size_t SystemContext::onlineCount() const {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), 1));
}

void SystemContext::sendUser(UserId from, UserId to,
                             sim::Callback atReceiver) {
  network_.sendMessage(
      endpointOf(from), endpointOf(to),
      [this, to, fn = std::move(atReceiver)]() mutable {
        if (isOnline(to)) fn();
      });
}

void SystemContext::sendToServer(UserId from, sim::Callback atServer) {
  network_.sendMessage(endpointOf(from), serverEndpoint_,
                       [this, fn = std::move(atServer)]() mutable {
                         sim_.schedule(config_.serverProcessing,
                                       std::move(fn));
                       });
}

void SystemContext::sendFromServer(UserId to, sim::Callback atReceiver) {
  network_.sendMessage(serverEndpoint_, endpointOf(to),
                       [this, to, fn = std::move(atReceiver)]() mutable {
                         if (isOnline(to)) fn();
                       });
}

void SystemContext::sendUser(UserId from, UserId to, sim::EventTag tag) {
  tag.stage = static_cast<std::uint16_t>(sim::Stage::kUserDeliver);
  tag.a32 = to.value();
  network_.sendMessage(endpointOf(from), endpointOf(to), tag);
}

void SystemContext::sendToServer(UserId from, sim::EventTag tag) {
  tag.stage = static_cast<std::uint16_t>(sim::Stage::kServerArrive);
  network_.sendMessage(endpointOf(from), serverEndpoint_, tag);
}

void SystemContext::sendFromServer(UserId to, sim::EventTag tag) {
  tag.stage = static_cast<std::uint16_t>(sim::Stage::kFromServer);
  tag.a32 = to.value();
  network_.sendMessage(serverEndpoint_, endpointOf(to), tag);
}

sim::Callback SystemContext::wrapStage(const sim::EventTag& tag,
                                       sim::Callback action) {
  switch (static_cast<sim::Stage>(tag.stage)) {
    case sim::Stage::kDirect:
    case sim::Stage::kServerRun:
      return action;
    case sim::Stage::kUserDeliver:
    case sim::Stage::kFromServer: {
      const UserId to{tag.a32};
      return [this, to, fn = std::move(action)]() mutable {
        if (isOnline(to)) fn();
      };
    }
    case sim::Stage::kServerArrive: {
      // At the server NIC: queue the processing delay, then run the action
      // under the kServerRun stage of the very same tag.
      sim::EventTag run = tag;
      run.stage = static_cast<std::uint16_t>(sim::Stage::kServerRun);
      return [this, run] {
        sim_.scheduleTagged(config_.serverProcessing, run);
      };
    }
  }
  return action;
}

std::uint64_t SystemContext::stashPayload(Payload payload) {
  const std::uint64_t id = nextPayloadId_++;
  payloads_.emplace(id, std::move(payload));
  return id;
}

SystemContext::Payload& SystemContext::payload(std::uint64_t id) {
  const auto it = payloads_.find(id);
  assert(it != payloads_.end() && "stale or freed payload id");
  return it->second;
}

SystemContext::Payload SystemContext::takePayload(std::uint64_t id) {
  const auto it = payloads_.find(id);
  assert(it != payloads_.end() && "stale or freed payload id");
  Payload out = std::move(it->second);
  payloads_.erase(it);
  return out;
}

void SystemContext::freePayload(std::uint64_t id) {
  const auto it = payloads_.find(id);
  assert(it != payloads_.end() && "stale or freed payload id");
  payloads_.erase(it);
}

void SystemContext::saveState(snapshot::Writer& w) const {
  w.section(0x54585443);  // "CTXT"
  const Rng::State rng = rng_.state();
  for (const std::uint64_t word : rng.s) w.u64(word);
  w.f64(rng.spareNormal);
  w.boolean(rng.hasSpareNormal);
  w.u64(online_.size());
  for (const char flag : online_) w.boolean(flag != 0);
  for (const sim::SimTime since : offlineSince_) w.i64(since);
  w.u64(released_.size());
  for (const char flag : released_) w.boolean(flag != 0);
  breakers_.saveState(w);
  w.u64(payloads_.size());
  for (const auto& [id, payload] : payloads_) {
    w.u64(id);
    w.u64(payload.u.size());
    for (const std::uint32_t x : payload.u) w.u32(x);
    w.u64(payload.v.size());
    for (const std::uint32_t x : payload.v) w.u32(x);
    w.u64(payload.x);
  }
  w.u64(nextPayloadId_);
}

bool SystemContext::loadState(snapshot::Reader& r) {
  r.section(0x54585443, "system context");
  Rng::State rng;
  for (std::uint64_t& word : rng.s) word = r.u64();
  rng.spareNormal = r.f64();
  rng.hasSpareNormal = r.boolean();
  const std::size_t users = r.count(1 + 8);
  if (!r.ok() || users != online_.size()) {
    r.fail("context user count mismatch");
    return false;
  }
  for (char& flag : online_) flag = r.boolean() ? 1 : 0;
  for (sim::SimTime& since : offlineSince_) since = r.i64();
  const std::size_t videos = r.count(1);
  if (!r.ok() || videos != released_.size()) {
    r.fail("context video count mismatch");
    return false;
  }
  for (char& flag : released_) flag = r.boolean() ? 1 : 0;
  if (!breakers_.loadState(r)) return false;
  const std::size_t payloadCount = r.count(8 + 8 + 8 + 8);
  payloads_.clear();
  for (std::size_t i = 0; i < payloadCount; ++i) {
    const std::uint64_t id = r.u64();
    Payload payload;
    payload.u.resize(r.count(4));
    for (std::uint32_t& x : payload.u) x = r.u32();
    payload.v.resize(r.count(4));
    for (std::uint32_t& x : payload.v) x = r.u32();
    payload.x = r.u64();
    if (!r.ok()) return false;
    if (payloads_.count(id) != 0) {
      r.fail("duplicate payload id");
      return false;
    }
    payloads_.emplace(id, std::move(payload));
  }
  nextPayloadId_ = r.u64();
  if (!r.ok()) return false;
  if (!payloads_.empty() && payloads_.rbegin()->first >= nextPayloadId_) {
    r.fail("payload id collides with the id allocator");
    return false;
  }
  rng_.setState(rng);
  return true;
}

}  // namespace st::vod
