#include "vod/context.h"

#include <algorithm>

namespace st::vod {

SystemContext::SystemContext(sim::Simulator& simulator, net::Network& network,
                             const trace::Catalog& catalog,
                             const VideoLibrary& library,
                             const VodConfig& config, Metrics& metrics,
                             std::uint64_t seed)
    : sim_(simulator),
      network_(network),
      catalog_(catalog),
      library_(library),
      config_(config),
      metrics_(metrics),
      rng_(Rng::forPurpose(seed, "protocol")),
      breakers_(catalog.userCount(), config.overload.breakerThreshold,
                config.overload.breakerCooldown),
      serverEndpoint_{static_cast<std::uint32_t>(catalog.userCount())},
      online_(catalog.userCount(), 0),
      offlineSince_(catalog.userCount(), 0),
      released_(catalog.videoCount(), 1) {
  // Register endpoints: one per user plus the origin server.
  for (std::size_t i = 0; i < catalog.userCount(); ++i) {
    network_.addEndpoint(EndpointId{static_cast<std::uint32_t>(i)},
                         {config.peerUploadBps, config.peerDownloadBps});
  }
  network_.addEndpoint(serverEndpoint_,
                       {config.serverUploadBps, config.serverUploadBps});
  // The origin server admits a bounded number of concurrent streams (each
  // then sustains at least half the video bitrate); excess requests queue.
  // See FlowNetwork::setUploadConcurrencyLimit.
  const auto streamSlots = static_cast<std::size_t>(
      std::max(4.0, 2.0 * config.serverUploadBps / config.bitrateBps));
  network_.flows().setUploadConcurrencyLimit(serverEndpoint_, streamSlots);
  // Overload-control policies (inert unless --overload enables them).
  if (config.overload.playbackFloorBps > 0.0) {
    network_.flows().setPlaybackFloor(config.overload.playbackFloorBps);
  }
  if (config.overload.admissionEnabled()) {
    net::FlowNetwork::AdmissionPolicy policy;
    policy.queueCap = config.overload.serverQueueCap;
    policy.shedPrefetch = true;
    network_.flows().setAdmissionPolicy(serverEndpoint_, policy);
  }
}

bool SystemContext::neighborAllowed(UserId owner, UserId neighbor) {
  if (!breakers_.enabled()) return true;
  const bool wasOpen =
      breakers_.state(owner, neighbor) == BreakerBoard::State::kOpen;
  const bool ok = breakers_.allowed(owner, neighbor, sim_.now());
  if (wasOpen && ok) {
    // The open breaker just granted its half-open trial.
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 2);
  }
  return ok;
}

void SystemContext::reportNeighborFailure(UserId owner, UserId neighbor) {
  if (breakers_.recordFailure(owner, neighbor, sim_.now())) {
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 1);
  }
}

void SystemContext::reportNeighborSuccess(UserId owner, UserId neighbor) {
  if (breakers_.recordSuccess(owner, neighbor)) {
    ST_TRACE(trace_, sim_.now(), kBreaker, owner.value(), neighbor.value(), 0);
  }
}

std::size_t SystemContext::onlineCount() const {
  return static_cast<std::size_t>(
      std::count(online_.begin(), online_.end(), 1));
}

void SystemContext::sendUser(UserId from, UserId to,
                             sim::Callback atReceiver) {
  network_.sendMessage(
      endpointOf(from), endpointOf(to),
      [this, to, fn = std::move(atReceiver)]() mutable {
        if (isOnline(to)) fn();
      });
}

void SystemContext::sendToServer(UserId from, sim::Callback atServer) {
  network_.sendMessage(endpointOf(from), serverEndpoint_,
                       [this, fn = std::move(atServer)]() mutable {
                         sim_.schedule(config_.serverProcessing,
                                       std::move(fn));
                       });
}

void SystemContext::sendFromServer(UserId to, sim::Callback atReceiver) {
  network_.sendMessage(serverEndpoint_, endpointOf(to),
                       [this, to, fn = std::move(atReceiver)]() mutable {
                         if (isOnline(to)) fn();
                       });
}

}  // namespace st::vod
