#include "vod/overload.h"

#include <cstdlib>

namespace st::vod {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool parseDouble(std::string_view token, double* out) {
  const std::string copy(token);
  if (copy.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

bool parseSize(std::string_view token, std::size_t* out) {
  const std::string copy(token);
  if (copy.empty() || copy.front() == '-' || copy.front() == '+') return false;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

// The "on" shorthand: the full degradation ladder at sane defaults (half
// the 320 kbps bitrate as the floor, a 30 s first-chunk deadline matching
// the default firstChunkTimeout's order of magnitude, modest prefetch
// credit, 3-strike breakers with a 5-minute cooldown).
void enableDefaults(OverloadConfig* out) {
  out->playbackFloorBps = 160'000.0;
  out->serverQueueCap = 64;
  out->admissionDeadlineSeconds = 30.0;
  out->prefetchCredit = 2;
  out->contentionThreshold = 3;
  out->breakerThreshold = 3;
  out->breakerCooldown = 300 * sim::kSecond;
  out->rebufferSloRatio = 0.05;
}

}  // namespace

bool OverloadConfig::parse(std::string_view spec, OverloadConfig* out,
                           std::string* error) {
  *out = OverloadConfig{};
  std::string_view rest = trim(spec);
  if (rest.empty() || rest == "none") return true;

  OverloadConfig config;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view field = trim(rest.substr(0, comma));
    if (field.empty()) {
      fail(error, "empty field in overload spec");
      *out = OverloadConfig{};
      return false;
    }
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      if (field == "on") {
        enableDefaults(&config);
      } else {
        fail(error, "unknown overload field '" + std::string(field) + "'");
        *out = OverloadConfig{};
        return false;
      }
    } else {
      const std::string_view key = trim(field.substr(0, eq));
      const std::string_view value = trim(field.substr(eq + 1));
      double number = 0.0;
      std::size_t count = 0;
      if (key == "floor_kbps") {
        if (!parseDouble(value, &number) || number < 0.0) {
          fail(error, "bad floor_kbps '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.playbackFloorBps = number * 1000.0;
      } else if (key == "queue") {
        if (!parseSize(value, &count)) {
          fail(error, "bad queue cap '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.serverQueueCap = count;
      } else if (key == "deadline") {
        if (!parseDouble(value, &number) || number < 0.0) {
          fail(error, "bad deadline '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.admissionDeadlineSeconds = number;
      } else if (key == "credit") {
        if (!parseSize(value, &count)) {
          fail(error, "bad prefetch credit '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.prefetchCredit = count;
      } else if (key == "contention") {
        if (!parseSize(value, &count)) {
          fail(error, "bad contention threshold '" + std::string(value) +
                          "'");
          *out = OverloadConfig{};
          return false;
        }
        config.contentionThreshold = count;
      } else if (key == "breaker") {
        if (!parseSize(value, &count)) {
          fail(error, "bad breaker threshold '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.breakerThreshold = count;
      } else if (key == "cooldown") {
        if (!parseDouble(value, &number) || number <= 0.0) {
          fail(error, "bad breaker cooldown '" + std::string(value) + "'");
          *out = OverloadConfig{};
          return false;
        }
        config.breakerCooldown = sim::fromSeconds(number);
      } else if (key == "slo") {
        if (!parseDouble(value, &number) || number < 0.0 || number > 1.0) {
          fail(error, "slo must be in [0,1], got '" + std::string(value) +
                          "'");
          *out = OverloadConfig{};
          return false;
        }
        config.rebufferSloRatio = number;
      } else {
        fail(error, "unknown overload field '" + std::string(key) + "'");
        *out = OverloadConfig{};
        return false;
      }
    }
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  *out = config;
  return true;
}

const char* OverloadConfig::grammar() {
  return "accepted --overload grammar:\n"
         "  spec  := \"\" | \"none\" | field (\",\" field)*\n"
         "  field := \"on\" | key \"=\" value\n"
         "  keys  := floor_kbps (playback floor, kbit/s)\n"
         "           queue      (server admission queue cap, flows)\n"
         "           deadline   (admission deadline, seconds)\n"
         "           credit     (in-flight prefetches per user)\n"
         "           contention (active downloads that veto prefetch)\n"
         "           breaker    (failures that open a circuit breaker)\n"
         "           cooldown   (open-breaker cooldown, seconds)\n"
         "           slo        (rebuffer-ratio target in [0,1])\n"
         "  \"on\" enables every knob at its default; later fields override.";
}

}  // namespace st::vod
