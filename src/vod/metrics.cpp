#include "vod/metrics.h"

#include <cassert>
#include <numeric>

namespace st::vod {

Metrics::Metrics(std::size_t userCount, std::size_t videosPerSession)
    : peerChunks_(userCount, 0),
      serverChunks_(userCount, 0),
      linksByVideosWatched_(videosPerSession + 1),
      startupTimeouts_(&registry_.counter("startup_timeouts")),
      cacheHits_(&registry_.counter("cache_hits")),
      prefetchHits_(&registry_.counter("prefetch_hits")),
      prefetchIssued_(&registry_.counter("prefetch_issued")),
      channelHits_(&registry_.counter("channel_hits")),
      categoryHits_(&registry_.counter("category_hits")),
      serverFallbacks_(&registry_.counter("server_fallbacks")),
      probes_(&registry_.counter("probes")),
      repairs_(&registry_.counter("repairs")),
      bodyCompletions_(&registry_.counter("body_completions")),
      rebuffers_(&registry_.counter("rebuffers")),
      searchRetries_(&registry_.counter("search.retries")),
      transferResourced_(&registry_.counter("transfer.resourced")) {
  // Derived scalars: one derivation, shared by watches() and the snapshot.
  registry_.addGauge("watches", [this] { return watches(); });
  registry_.addGauge("peer_chunks", [this] { return totalPeerChunks(); });
  registry_.addGauge("server_chunks", [this] { return totalServerChunks(); });
}

void Metrics::recordChunks(UserId user, ChunkSource source,
                           std::uint64_t chunks) {
  assert(user.index() < peerChunks_.size());
  if (source == ChunkSource::kPeer) {
    peerChunks_[user.index()] += chunks;
  } else {
    serverChunks_[user.index()] += chunks;
  }
}

std::uint64_t Metrics::totalPeerChunks() const {
  return std::accumulate(peerChunks_.begin(), peerChunks_.end(),
                         std::uint64_t{0});
}

std::uint64_t Metrics::totalServerChunks() const {
  return std::accumulate(serverChunks_.begin(), serverChunks_.end(),
                         std::uint64_t{0});
}

SampleSet Metrics::normalizedPeerBandwidth() const {
  SampleSet samples;
  for (std::size_t i = 0; i < peerChunks_.size(); ++i) {
    const std::uint64_t total = peerChunks_[i] + serverChunks_[i];
    if (total == 0) continue;
    samples.add(static_cast<double>(peerChunks_[i]) /
                static_cast<double>(total));
  }
  return samples;
}

namespace {

void saveRunningStats(snapshot::Writer& w, const RunningStats& stats) {
  const RunningStats::State s = stats.state();
  w.u64(s.count);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
}

RunningStats loadRunningStats(snapshot::Reader& r) {
  RunningStats stats;
  RunningStats::State s;
  s.count = static_cast<std::size_t>(r.u64());
  s.mean = r.f64();
  s.m2 = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  stats.setState(s);
  return stats;
}

void saveSampleSet(snapshot::Writer& w, const SampleSet& samples) {
  w.boolean(samples.sortPending());
  w.u64(samples.count());
  for (const double x : samples.samples()) w.f64(x);
}

bool loadSampleSet(snapshot::Reader& r, SampleSet* out) {
  const bool sortPending = r.boolean();
  std::vector<double> samples(r.count(8));
  for (double& x : samples) x = r.f64();
  if (!r.ok()) return false;
  out->restoreSamples(std::move(samples), sortPending);
  return true;
}

}  // namespace

void Metrics::saveState(snapshot::Writer& w) const {
  w.section(0x4d545243);  // "CRTM"
  saveSampleSet(w, startupDelayMs_);
  w.u64(peerChunks_.size());
  for (const std::uint64_t chunks : peerChunks_) w.u64(chunks);
  for (const std::uint64_t chunks : serverChunks_) w.u64(chunks);
  w.u64(linksByVideosWatched_.size());
  for (const RunningStats& stats : linksByVideosWatched_) {
    saveRunningStats(w, stats);
  }
  saveRunningStats(w, redundantLinks_);
  w.u64(stallCount_);
  w.f64(stallSeconds_);
  w.f64(playbackSeconds_);
  w.u64(prefetchThrottled_);
  std::uint64_t counters = 0;
  registry_.visitCounters(
      [&counters](std::string_view, std::uint64_t) { ++counters; });
  w.u64(counters);
  registry_.visitCounters([&w](std::string_view name, std::uint64_t value) {
    w.str(name);
    w.u64(value);
  });
}

bool Metrics::loadState(snapshot::Reader& r) {
  r.section(0x4d545243, "metrics");
  if (!loadSampleSet(r, &startupDelayMs_)) return false;
  const std::size_t users = r.count(8);
  if (!r.ok() || users != peerChunks_.size()) {
    r.fail("metrics user count mismatch");
    return false;
  }
  for (std::uint64_t& chunks : peerChunks_) chunks = r.u64();
  for (std::uint64_t& chunks : serverChunks_) chunks = r.u64();
  const std::size_t buckets = r.count(8);
  if (!r.ok() || buckets != linksByVideosWatched_.size()) {
    r.fail("metrics link-bucket count mismatch");
    return false;
  }
  for (RunningStats& stats : linksByVideosWatched_) {
    stats = loadRunningStats(r);
  }
  redundantLinks_ = loadRunningStats(r);
  stallCount_ = r.u64();
  stallSeconds_ = r.f64();
  playbackSeconds_ = r.f64();
  prefetchThrottled_ = r.u64();
  const std::size_t counters = r.count(2);
  for (std::size_t i = 0; i < counters; ++i) {
    const std::string name = r.str();
    const std::uint64_t value = r.u64();
    if (!r.ok()) return false;
    if (!registry_.restoreCounter(name, value)) {
      r.fail("metrics counter \"" + name + "\" unknown in this run");
      return false;
    }
  }
  return r.ok();
}

void Metrics::recordLinks(std::size_t videosWatched, std::size_t links) {
  if (videosWatched >= linksByVideosWatched_.size()) {
    videosWatched = linksByVideosWatched_.size() - 1;
  }
  linksByVideosWatched_[videosWatched].add(static_cast<double>(links));
}

}  // namespace st::vod
