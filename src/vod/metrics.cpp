#include "vod/metrics.h"

#include <cassert>
#include <numeric>

namespace st::vod {

Metrics::Metrics(std::size_t userCount, std::size_t videosPerSession)
    : peerChunks_(userCount, 0),
      serverChunks_(userCount, 0),
      linksByVideosWatched_(videosPerSession + 1),
      startupTimeouts_(&registry_.counter("startup_timeouts")),
      cacheHits_(&registry_.counter("cache_hits")),
      prefetchHits_(&registry_.counter("prefetch_hits")),
      prefetchIssued_(&registry_.counter("prefetch_issued")),
      channelHits_(&registry_.counter("channel_hits")),
      categoryHits_(&registry_.counter("category_hits")),
      serverFallbacks_(&registry_.counter("server_fallbacks")),
      probes_(&registry_.counter("probes")),
      repairs_(&registry_.counter("repairs")),
      bodyCompletions_(&registry_.counter("body_completions")),
      rebuffers_(&registry_.counter("rebuffers")),
      searchRetries_(&registry_.counter("search.retries")),
      transferResourced_(&registry_.counter("transfer.resourced")) {
  // Derived scalars: one derivation, shared by watches() and the snapshot.
  registry_.addGauge("watches", [this] { return watches(); });
  registry_.addGauge("peer_chunks", [this] { return totalPeerChunks(); });
  registry_.addGauge("server_chunks", [this] { return totalServerChunks(); });
}

void Metrics::recordChunks(UserId user, ChunkSource source,
                           std::uint64_t chunks) {
  assert(user.index() < peerChunks_.size());
  if (source == ChunkSource::kPeer) {
    peerChunks_[user.index()] += chunks;
  } else {
    serverChunks_[user.index()] += chunks;
  }
}

std::uint64_t Metrics::totalPeerChunks() const {
  return std::accumulate(peerChunks_.begin(), peerChunks_.end(),
                         std::uint64_t{0});
}

std::uint64_t Metrics::totalServerChunks() const {
  return std::accumulate(serverChunks_.begin(), serverChunks_.end(),
                         std::uint64_t{0});
}

SampleSet Metrics::normalizedPeerBandwidth() const {
  SampleSet samples;
  for (std::size_t i = 0; i < peerChunks_.size(); ++i) {
    const std::uint64_t total = peerChunks_[i] + serverChunks_[i];
    if (total == 0) continue;
    samples.add(static_cast<double>(peerChunks_[i]) /
                static_cast<double>(total));
  }
  return samples;
}

void Metrics::recordLinks(std::size_t videosWatched, std::size_t links) {
  if (videosWatched >= linksByVideosWatched_.size()) {
    videosWatched = linksByVideosWatched_.size() - 1;
  }
  linksByVideosWatched_[videosWatched].add(static_cast<double>(links));
}

}  // namespace st::vod
