// Overload-control knobs: the parsed form of an `--overload=` spec.
//
// Everything defaults to *off*; a config where any() is false leaves every
// run bitwise-identical to a build without the overload layer. Parsing is
// pure (no simulator state), so specs can be validated from the CLI before
// minutes of simulation — the same contract as fault::Schedule.
//
// Grammar (whitespace around tokens is ignored):
//
//   spec   := "" | "none" | field ("," field)*
//   field  := "on" | key "=" value
//
// "on" enables the whole degradation ladder with the defaults listed below;
// later fields override individual knobs.
//
// Keys:
//   floor_kbps  playback-floor rate in kbit/s; flows below it preempt
//               lower-class flows (0 = no priorities)        [on: 160]
//   queue       server admission queue cap, in flows (0 = unbounded)
//                                                            [on: 64]
//   deadline    admission deadline in seconds for first-chunk flows;
//               requests whose queue wait would exceed it are shed
//               (0 = patient)                                [on: 30]
//   credit      max in-flight prefetches per user (0 = unlimited)
//                                                            [on: 2]
//   contention  skip prefetch issuance while the user already has at
//               least this many active downloads (0 = never) [on: 3]
//   breaker     per-neighbor failure count that opens a circuit breaker
//               (0 = breakers off)                           [on: 3]
//   cooldown    seconds an open breaker waits before half-open [on: 300]
//   slo         rebuffer-ratio SLO target in [0,1], reported by the
//               slo.* gauges                                 [on: 0.05]
//
// Example:  --overload on                (full ladder, defaults)
//           --overload floor_kbps=200,breaker=5,cooldown=120
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace st::vod {

struct OverloadConfig {
  // Flow priorities: minimum rate (bps) a newly started flow must get
  // before lower-class flows are paused. 0 = classes inert.
  double playbackFloorBps = 0.0;
  // Origin-server admission control (needs the concurrency limit that
  // SystemContext always installs): cap on queued streams, and the
  // deadline budget for first-chunk flows. 0/0 = admit everything.
  std::size_t serverQueueCap = 0;
  double admissionDeadlineSeconds = 0.0;
  // Prefetch backpressure at the client.
  std::size_t prefetchCredit = 0;       // in-flight prefetches per user
  std::size_t contentionThreshold = 0;  // active downloads that veto prefetch
  // Per-neighbor circuit breakers.
  std::size_t breakerThreshold = 0;     // failures to open; 0 = off
  sim::SimTime breakerCooldown = 300 * sim::kSecond;
  // Playback SLO target used by the slo.* report gauges.
  double rebufferSloRatio = 0.05;

  // True when any knob departs from its inert default — the gate for every
  // registration and policy installation (mirrors ExperimentConfig::Faults).
  [[nodiscard]] bool any() const {
    return playbackFloorBps > 0.0 || serverQueueCap > 0 ||
           admissionDeadlineSeconds > 0.0 || prefetchCredit > 0 ||
           contentionThreshold > 0 || breakerThreshold > 0;
  }
  [[nodiscard]] bool admissionEnabled() const {
    return serverQueueCap > 0 || admissionDeadlineSeconds > 0.0;
  }
  [[nodiscard]] bool breakersEnabled() const { return breakerThreshold > 0; }

  // Parses `spec` into `out` (replacing its contents). Returns false and
  // fills `error` (if non-null, naming the offending token) on malformed
  // input; `out` is reset to defaults then.
  static bool parse(std::string_view spec, OverloadConfig* out,
                    std::string* error);

  // One-line-per-key description of the accepted grammar, for fail-fast CLI
  // error messages.
  [[nodiscard]] static const char* grammar();
};

}  // namespace st::vod
