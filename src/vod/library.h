// Byte/chunk view of the catalog's videos.
//
// The trace stores lengths and popularity; the transfer layer needs sizes.
// A VideoAsset is the bridge: derived once from (length x bitrate) and the
// configured chunk count.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/catalog.h"
#include "vod/config.h"

namespace st::vod {

struct VideoAsset {
  VideoId id;
  std::uint32_t chunks = 0;
  std::uint64_t chunkBytes = 0;
  std::uint64_t totalBytes = 0;
  double lengthSeconds = 0.0;
};

class VideoLibrary {
 public:
  VideoLibrary(const trace::Catalog& catalog, const VodConfig& config);

  [[nodiscard]] const VideoAsset& asset(VideoId id) const {
    return assets_[id.index()];
  }
  [[nodiscard]] std::size_t size() const { return assets_.size(); }

  // Bytes of everything except the first chunk.
  [[nodiscard]] std::uint64_t bodyBytes(VideoId id) const {
    const VideoAsset& a = assets_[id.index()];
    return a.totalBytes - a.chunkBytes;
  }

 private:
  std::vector<VideoAsset> assets_;
};

}  // namespace st::vod
