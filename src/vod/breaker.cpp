#include "vod/breaker.h"

#include <algorithm>
#include <cassert>

namespace st::vod {

BreakerBoard::Entry& BreakerBoard::entry(UserId owner, UserId neighbor) {
  assert(owner.index() < byOwner_.size());
  std::vector<Entry>& entries = byOwner_[owner.index()];
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [neighbor](const Entry& e) { return e.neighbor == neighbor; });
  if (it != entries.end()) return *it;
  entries.push_back(Entry{neighbor});
  return entries.back();
}

const BreakerBoard::Entry* BreakerBoard::findEntry(UserId owner,
                                                   UserId neighbor) const {
  if (owner.index() >= byOwner_.size()) return nullptr;
  const std::vector<Entry>& entries = byOwner_[owner.index()];
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [neighbor](const Entry& e) { return e.neighbor == neighbor; });
  return it == entries.end() ? nullptr : &*it;
}

bool BreakerBoard::allowed(UserId owner, UserId neighbor, sim::SimTime now) {
  if (!enabled()) return true;
  if (owner.index() >= byOwner_.size()) return true;
  // Read-only lookup first: most pairs have no entry and must not grow one.
  std::vector<Entry>& entries = byOwner_[owner.index()];
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [neighbor](const Entry& e) { return e.neighbor == neighbor; });
  if (it == entries.end()) return true;
  Entry& e = *it;
  switch (e.state) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // One trial is already in flight somewhere; further traffic waits for
      // its verdict rather than stampeding a possibly-dead neighbor.
      return false;
    case State::kOpen:
      if (now < e.retryAt) return false;
      e.state = State::kHalfOpen;
      ++halfOpened_;
      return true;  // the half-open trial itself
  }
  return true;
}

bool BreakerBoard::recordFailure(UserId owner, UserId neighbor,
                                 sim::SimTime now) {
  if (!enabled()) return false;
  Entry& e = entry(owner, neighbor);
  switch (e.state) {
    case State::kOpen:
      // Already open; nothing new to report and the cooldown keeps ticking.
      return false;
    case State::kHalfOpen:
      // The trial failed: re-open with a fresh cooldown.
      e.state = State::kOpen;
      e.retryAt = now + cooldown_;
      ++opened_;
      return true;
    case State::kClosed:
      if (++e.failures < threshold_) return false;
      e.state = State::kOpen;
      e.retryAt = now + cooldown_;
      ++opened_;
      ++openNow_;
      return true;
  }
  return false;
}

bool BreakerBoard::recordSuccess(UserId owner, UserId neighbor) {
  if (!enabled()) return false;
  if (owner.index() >= byOwner_.size()) return false;
  std::vector<Entry>& entries = byOwner_[owner.index()];
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [neighbor](const Entry& e) { return e.neighbor == neighbor; });
  if (it == entries.end()) return false;
  Entry& e = *it;
  const bool wasTripped = e.state != State::kClosed;
  e.state = State::kClosed;
  e.failures = 0;
  if (wasTripped) {
    ++closed_;
    assert(openNow_ > 0);
    --openNow_;
  }
  return wasTripped;
}

BreakerBoard::State BreakerBoard::state(UserId owner, UserId neighbor) const {
  const Entry* e = findEntry(owner, neighbor);
  return e == nullptr ? State::kClosed : e->state;
}

}  // namespace st::vod
