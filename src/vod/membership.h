// Server-side membership directory: which users are registered under which
// key (channel or video), with O(1) add/remove and uniform random member
// sampling.
//
// Used as the origin server's state in all three systems:
//  * SocialTube — key = ChannelId: the online subscribers of each channel
//    (plus current non-subscriber watchers). The paper's point is that this
//    is *small* state: users report subscription changes, not every video.
//  * NetTube    — key = VideoId: online holders of each video.
//  * PA-VoD     — key = VideoId: current watchers holding a full copy.
//
// Storage is index-addressed and hash-free: keys and users are StrongIds,
// so the per-key member lists live in a flat vector indexed by key, and
// each user's registrations (with their member-list positions) live in a
// flat vector indexed by user. Removal is the usual swap-with-back trick;
// the displaced member's position is patched through its own (short)
// registration list instead of a per-key position hash map.
//
// Iteration-order caveat: swap-with-back makes a member list's order a
// function of the directory's whole add/remove history, and randomMembers()
// draws by position — the order is *behaviorally relevant*, not an
// implementation detail. Snapshot round-trips therefore persist the exact
// list orders (saveState/loadState below), while anything that wants an
// order-independent identity (overlay fingerprints, test assertions) must
// go through canonicalMembers(), which sorts.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "snapshot/codec.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace st::vod {

template <typename Key>
class MembershipDirectory {
 public:
  void add(UserId user, Key key) {
    if (contains(user, key)) return;
    auto& members = keyEntry(key);
    userRefs(user).push_back(
        Ref{key, static_cast<std::uint32_t>(members.size())});
    members.push_back(user);
    ++total_;
  }

  void remove(UserId user, Key key) {
    if (user.index() >= byUser_.size()) return;
    auto& refs = byUser_[user.index()];
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (refs[i].key != key) continue;
      auto& members = byKey_[key.index()];
      const std::uint32_t pos = refs[i].position;
      const UserId moved = members.back();
      members[pos] = moved;
      members.pop_back();
      if (moved != user) patchPosition(moved, key, pos);
      refs[i] = refs.back();
      refs.pop_back();
      --total_;
      return;
    }
  }

  // Removes the user from every list they appear in.
  void removeAll(UserId user) {
    if (user.index() >= byUser_.size()) return;
    auto& refs = byUser_[user.index()];
    while (!refs.empty()) remove(user, refs.back().key);
  }

  [[nodiscard]] bool contains(UserId user, Key key) const {
    if (user.index() >= byUser_.size()) return false;
    for (const Ref& ref : byUser_[user.index()]) {
      if (ref.key == key) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t memberCount(Key key) const {
    return key.index() < byKey_.size() ? byKey_[key.index()].size() : 0;
  }

  // Total (user, key) registrations — the server-state-size metric the
  // paper compares between SocialTube and NetTube.
  [[nodiscard]] std::size_t totalRegistrations() const { return total_; }

  // Visits every (user, key) registration in user-index order (registration
  // order within a user). Audit-only traversal; not on any protocol path.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < byUser_.size(); ++i) {
      for (const Ref& ref : byUser_[i]) {
        fn(UserId{static_cast<std::uint32_t>(i)}, ref.key);
      }
    }
  }

  // Members of `key` in user-id order — deletion-history-independent, for
  // fingerprints and order-stable assertions. Never use on a protocol path
  // (sampling must stay position-based for bitwise compatibility).
  [[nodiscard]] std::vector<UserId> canonicalMembers(Key key) const {
    std::vector<UserId> members;
    if (key.index() < byKey_.size()) members = byKey_[key.index()];
    std::sort(members.begin(), members.end());
    return members;
  }
  [[nodiscard]] std::size_t keyCount() const { return byKey_.size(); }

  // Checkpoint/restore. Member-list order and each user's registration-ref
  // order are both persisted verbatim: the former drives randomMembers()
  // draws, the latter drives removeAll()'s removal order and forEach()'s
  // audit order.
  void saveState(snapshot::Writer& w) const {
    w.section(0x4d454d42);  // "BMEM"
    w.u64(byKey_.size());
    for (const auto& members : byKey_) {
      w.u64(members.size());
      for (const UserId member : members) w.u32(member.value());
    }
    w.u64(byUser_.size());
    for (const auto& refs : byUser_) {
      w.u64(refs.size());
      for (const Ref& ref : refs) {
        w.u32(ref.key.value());
        w.u32(ref.position);
      }
    }
  }
  bool loadState(snapshot::Reader& r) {
    r.section(0x4d454d42, "membership directory");
    byKey_.clear();
    byUser_.clear();
    total_ = 0;
    byKey_.resize(r.count(8));
    for (auto& members : byKey_) {
      members.resize(r.count(4));
      for (UserId& member : members) member = UserId{r.u32()};
    }
    byUser_.resize(r.count(8));
    for (auto& refs : byUser_) {
      refs.resize(r.count(8));
      for (Ref& ref : refs) {
        ref.key = Key{r.u32()};
        ref.position = r.u32();
        ++total_;
      }
    }
    if (!r.ok()) return false;
    // Cross-check refs against the member lists; a mismatch means a corrupt
    // (if CRC-valid) file, and applying it would break remove() forever.
    std::size_t listed = 0;
    for (const auto& members : byKey_) listed += members.size();
    if (listed != total_) {
      r.fail("membership refs/lists disagree");
      return false;
    }
    for (std::size_t u = 0; u < byUser_.size(); ++u) {
      for (const Ref& ref : byUser_[u]) {
        if (ref.key.index() >= byKey_.size() ||
            ref.position >= byKey_[ref.key.index()].size() ||
            byKey_[ref.key.index()][ref.position].index() != u) {
          r.fail("membership ref points at the wrong member");
          return false;
        }
      }
    }
    return true;
  }

  // Up to `count` distinct random members of `key`, excluding `exclude`.
  [[nodiscard]] std::vector<UserId> randomMembers(Key key, std::size_t count,
                                                  UserId exclude,
                                                  Rng& rng) const {
    std::vector<UserId> result;
    if (key.index() >= byKey_.size()) return result;
    const auto& members = byKey_[key.index()];
    if (members.empty()) return result;
    if (members.size() <= count + 1) {
      for (const UserId member : members) {
        if (member != exclude) result.push_back(member);
      }
      rng.shuffle(result);
      if (result.size() > count) result.resize(count);
      return result;
    }
    std::size_t attempts = 0;
    while (result.size() < count && attempts < count * 20 + 20) {
      ++attempts;
      const UserId candidate = members[rng.uniformInt(members.size())];
      if (candidate == exclude) continue;
      if (std::find(result.begin(), result.end(), candidate) !=
          result.end()) {
        continue;
      }
      result.push_back(candidate);
    }
    return result;
  }

 private:
  struct Ref {
    Key key;
    std::uint32_t position;  // index of this user in byKey_[key].members
  };

  std::vector<UserId>& keyEntry(Key key) {
    if (key.index() >= byKey_.size()) byKey_.resize(key.index() + 1);
    return byKey_[key.index()];
  }

  std::vector<Ref>& userRefs(UserId user) {
    if (user.index() >= byUser_.size()) byUser_.resize(user.index() + 1);
    return byUser_[user.index()];
  }

  void patchPosition(UserId user, Key key, std::uint32_t position) {
    for (Ref& ref : byUser_[user.index()]) {
      if (ref.key == key) {
        ref.position = position;
        return;
      }
    }
    assert(false && "moved member missing its registration ref");
  }

  std::vector<std::vector<UserId>> byKey_;  // indexed by key.index()
  std::vector<std::vector<Ref>> byUser_;    // indexed by user.index()
  std::size_t total_ = 0;
};

}  // namespace st::vod
