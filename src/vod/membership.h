// Server-side membership directory: which users are registered under which
// key (channel or video), with O(1) add/remove and uniform random member
// sampling.
//
// Used as the origin server's state in all three systems:
//  * SocialTube — key = ChannelId: the online subscribers of each channel
//    (plus current non-subscriber watchers). The paper's point is that this
//    is *small* state: users report subscription changes, not every video.
//  * NetTube    — key = VideoId: online holders of each video.
//  * PA-VoD     — key = VideoId: current watchers holding a full copy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/strong_id.h"

namespace st::vod {

template <typename Key>
class MembershipDirectory {
 public:
  void add(UserId user, Key key) {
    Entry& entry = byKey_[key];
    if (entry.position.count(user) > 0) return;
    entry.position[user] = static_cast<std::uint32_t>(entry.members.size());
    entry.members.push_back(user);
    byUser_[user].push_back(key);
    ++total_;
  }

  void remove(UserId user, Key key) {
    const auto keyIt = byKey_.find(key);
    if (keyIt == byKey_.end()) return;
    Entry& entry = keyIt->second;
    const auto posIt = entry.position.find(user);
    if (posIt == entry.position.end()) return;
    const std::uint32_t pos = posIt->second;
    const UserId moved = entry.members.back();
    entry.members[pos] = moved;
    entry.position[moved] = pos;
    entry.members.pop_back();
    entry.position.erase(posIt);
    if (entry.members.empty()) byKey_.erase(keyIt);
    --total_;

    auto& list = byUser_[user];
    const auto it = std::find(list.begin(), list.end(), key);
    assert(it != list.end());
    list.erase(it);
    if (list.empty()) byUser_.erase(user);
  }

  // Removes the user from every list they appear in.
  void removeAll(UserId user) {
    const auto it = byUser_.find(user);
    if (it == byUser_.end()) return;
    const std::vector<Key> keys = it->second;  // copy: remove() mutates
    for (const Key key : keys) remove(user, key);
  }

  [[nodiscard]] bool contains(UserId user, Key key) const {
    const auto it = byKey_.find(key);
    return it != byKey_.end() && it->second.position.count(user) > 0;
  }

  [[nodiscard]] std::size_t memberCount(Key key) const {
    const auto it = byKey_.find(key);
    return it == byKey_.end() ? 0 : it->second.members.size();
  }

  // Total (user, key) registrations — the server-state-size metric the
  // paper compares between SocialTube and NetTube.
  [[nodiscard]] std::size_t totalRegistrations() const { return total_; }

  // Up to `count` distinct random members of `key`, excluding `exclude`.
  [[nodiscard]] std::vector<UserId> randomMembers(Key key, std::size_t count,
                                                  UserId exclude,
                                                  Rng& rng) const {
    std::vector<UserId> result;
    const auto it = byKey_.find(key);
    if (it == byKey_.end()) return result;
    const auto& members = it->second.members;
    if (members.size() <= count + 1) {
      for (const UserId member : members) {
        if (member != exclude) result.push_back(member);
      }
      rng.shuffle(result);
      if (result.size() > count) result.resize(count);
      return result;
    }
    std::size_t attempts = 0;
    while (result.size() < count && attempts < count * 20 + 20) {
      ++attempts;
      const UserId candidate = members[rng.uniformInt(members.size())];
      if (candidate == exclude) continue;
      if (std::find(result.begin(), result.end(), candidate) !=
          result.end()) {
        continue;
      }
      result.push_back(candidate);
    }
    return result;
  }

 private:
  struct Entry {
    std::vector<UserId> members;
    std::unordered_map<UserId, std::uint32_t> position;
  };

  std::unordered_map<Key, Entry> byKey_;
  std::unordered_map<UserId, std::vector<Key>> byUser_;
  std::size_t total_ = 0;
};

}  // namespace st::vod
