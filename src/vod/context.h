// Shared wiring passed to every VoD system implementation.
//
// Users map to endpoints by index; the origin server is one extra endpoint.
// Control-plane helpers deliver callbacks across the latency model and drop
// messages whose receiver is offline at delivery time (protocols recover via
// their phase deadlines).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/network.h"
#include "obs/event_trace.h"
#include "sim/simulator.h"
#include "trace/catalog.h"
#include "util/rng.h"
#include "vod/breaker.h"
#include "vod/config.h"
#include "vod/library.h"
#include "vod/metrics.h"

namespace st::vod {

class SystemContext final : public net::ShardRouter {
 public:
  SystemContext(sim::Simulator& simulator, net::Network& network,
                const trace::Catalog& catalog, const VideoLibrary& library,
                const VodConfig& config, Metrics& metrics, std::uint64_t seed);

  SystemContext(const SystemContext&) = delete;
  SystemContext& operator=(const SystemContext&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return network_; }
  const trace::Catalog& catalog() const { return catalog_; }
  const VideoLibrary& library() const { return library_; }
  const VodConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  Rng& rng() { return rng_; }

  // Optional structured event sink (see obs/event_trace.h). Null by default;
  // protocol code emits through the ST_TRACE macro, which tolerates null and
  // compiles out entirely under ST_TRACE=OFF.
  [[nodiscard]] obs::EventTrace* trace() const { return trace_; }
  void setTrace(obs::EventTrace* trace) { trace_ = trace; }

  [[nodiscard]] EndpointId endpointOf(UserId user) const {
    return EndpointId{user.value()};
  }
  [[nodiscard]] EndpointId serverEndpoint() const { return serverEndpoint_; }

  // --- community sharding (net::ShardRouter) --------------------------------
  // A user's home community is their primary interest (first entry of the
  // catalog's sorted interest list; users without interests hash over the
  // categories); the origin server and everything it schedules live on the
  // root key 0. Only populated when the simulator is sharded — the
  // constructor then installs this context as the network's router so
  // deliveries land on the receiver's shard.
  [[nodiscard]] std::uint32_t homeKeyOf(UserId user) const {
    return homeKey_.empty() ? 0 : homeKey_[user.index()];
  }
  [[nodiscard]] std::uint32_t shardKeyOf(EndpointId endpoint) const override {
    if (endpoint == serverEndpoint_ || homeKey_.empty()) return 0;
    return homeKey_[endpoint.value()];
  }

  [[nodiscard]] bool isOnline(UserId user) const {
    return online_[user.index()] != 0;
  }
  void setOnline(UserId user, bool online) {
    online_[user.index()] = online ? 1 : 0;
    if (!online) offlineSince_[user.index()] = sim_.now();
  }
  // When the user last went offline (0 for never-online users). Only
  // meaningful while the user is offline; the invariant checker compares it
  // against the repair horizon to age stale links.
  [[nodiscard]] sim::SimTime offlineSince(UserId user) const {
    return offlineSince_[user.index()];
  }
  [[nodiscard]] std::size_t onlineCount() const;

  // Video release state (dynamic uploads, see vod/releases.h). Everything
  // is released by default; the ReleaseManager holds some videos back and
  // publishes them mid-run. Unreleased videos are never selected,
  // prefetched, or served.
  [[nodiscard]] bool isReleased(VideoId video) const {
    return released_[video.index()] != 0;
  }
  void setReleased(VideoId video, bool released) {
    released_[video.index()] = released ? 1 : 0;
  }

  // --- circuit breakers (overload control, see vod/breaker.h) ---------------
  // Inert unless config.overload.breakerThreshold > 0: neighborAllowed()
  // answers true and the report helpers do nothing, so baseline runs are
  // untouched. The wrappers emit kBreaker trace events on transitions
  // (value: 1 = opened, 2 = half-open trial, 0 = closed).
  [[nodiscard]] BreakerBoard& breakers() { return breakers_; }
  bool neighborAllowed(UserId owner, UserId neighbor);
  void reportNeighborFailure(UserId owner, UserId neighbor);
  void reportNeighborSuccess(UserId owner, UserId neighbor);

  // Delivers `atReceiver` at `to` after one-way latency; silently dropped if
  // the receiver is offline when the message arrives (or lost in transit).
  void sendUser(UserId from, UserId to, sim::Callback atReceiver);

  // Request to the origin server: latency + processing delay, then
  // `atServer` runs (server never churns).
  void sendToServer(UserId from, sim::Callback atServer);

  // Server-to-user reply; dropped if the user went offline.
  void sendFromServer(UserId to, sim::Callback atReceiver);

  // --- tagged (checkpointable) messaging ------------------------------------
  // Same delivery semantics as the closure helpers, but the message is a
  // serializable EventTag routed through the component's EventFactory. The
  // helpers stamp the delivery stage (and receiver) onto the tag; the
  // factory's rebuild() applies the matching guard via wrapStage().
  void sendUser(UserId from, UserId to, sim::EventTag tag);
  void sendToServer(UserId from, sim::EventTag tag);
  void sendFromServer(UserId to, sim::EventTag tag);

  // Wraps a component's raw event action in the delivery-stage guard the
  // closure send helpers used to capture: online checks for user delivery,
  // the server-processing hop for requests. Factories call this from
  // rebuild() so runtime and restore share one path. For kServerArrive the
  // action is ignored — the wrapper schedules the same tag at kServerRun.
  [[nodiscard]] sim::Callback wrapStage(const sim::EventTag& tag,
                                        sim::Callback action);

  // --- payload pool ----------------------------------------------------------
  // Serializable side-storage for event arguments that do not fit in a
  // 40-byte tag (provider lists, gossip digests). The event's tag carries
  // the pool id; the consuming action (or the factory's discard() when the
  // message is lost) frees the entry explicitly — entries are never
  // reference-counted and cancellable events must not carry payloads.
  struct Payload {
    std::vector<std::uint32_t> u;
    std::vector<std::uint32_t> v;
    std::uint64_t x = 0;
  };
  std::uint64_t stashPayload(Payload payload);
  // Live payload lookup; asserts on stale/unknown ids (a leak or double
  // free would silently corrupt a restore otherwise).
  [[nodiscard]] Payload& payload(std::uint64_t id);
  // Moves the payload out and frees the entry.
  Payload takePayload(std::uint64_t id);
  void freePayload(std::uint64_t id);
  [[nodiscard]] std::size_t livePayloads() const { return payloads_.size(); }

  // Checkpoint/restore: protocol RNG, presence/release flags, breaker
  // board, and the payload pool. Endpoint wiring and overload policies are
  // reapplied by construction from the same config.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

 private:
  sim::Simulator& sim_;
  net::Network& network_;
  const trace::Catalog& catalog_;
  const VideoLibrary& library_;
  const VodConfig& config_;
  Metrics& metrics_;
  obs::EventTrace* trace_ = nullptr;
  Rng rng_;
  BreakerBoard breakers_;
  EndpointId serverEndpoint_;
  // Per-user owner community key (1 + category index); empty unless the
  // simulator is sharded.
  std::vector<std::uint32_t> homeKey_;
  std::vector<char> online_;
  std::vector<sim::SimTime> offlineSince_;
  std::vector<char> released_;
  // Ordered map: snapshot writes iterate it, so the byte stream is canonical.
  std::map<std::uint64_t, Payload> payloads_;
  std::uint64_t nextPayloadId_ = 1;
};

}  // namespace st::vod
