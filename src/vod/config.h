// Protocol and workload parameters (Table I plus §V prose).
//
// OCR-damaged constants are resolved per DESIGN.md §2; everything is a
// plain field so tests and ablation benches can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"
#include "vod/overload.h"

namespace st::vod {

struct VodConfig {
  // --- video/chunk model ----------------------------------------------------
  // Table I: 320 kbps bitrate, 20 chunks per video.
  double bitrateBps = 320'000.0;
  std::uint32_t chunksPerVideo = 20;

  // --- overlay shape (SocialTube) --------------------------------------------
  std::size_t innerLinks = 5;   // N_l, links in the lower-level channel overlay
  std::size_t interLinks = 10;  // N_h, links into sibling channels
  int ttl = 2;                  // search TTL per phase

  // --- NetTube / PA-VoD -------------------------------------------------------
  std::size_t linksPerVideoOverlay = 5;  // NetTube links per per-video overlay
  std::size_t watcherListSize = 5;       // PA-VoD current watchers returned

  // Number of providers a video body may be striped across (swarming).
  // 1 = the paper's single-provider transfers; higher values split the body
  // into chunk-aligned segments fetched in parallel from distinct providers
  // (extension; see ablation_swarm). Requires providers that hold the video;
  // missing extras simply reduce the stripe width.
  std::size_t bodySources = 1;

  // Repair strategy after probe failures: false = ask the origin server for
  // replacement members (the paper's design); true = gossip repair — ask a
  // live neighbor for candidates from its own neighbor lists, trading a
  // little match quality for zero server involvement (extension; see
  // ablation_repair).
  bool gossipRepair = false;

  // --- prefetching ------------------------------------------------------------
  bool prefetchEnabled = true;
  std::size_t prefetchCount = 3;      // M: videos prefetched per playback (§V-B)
  std::size_t prefetchCacheSlots = 8; // first-chunk slots in the cache
  // Full-video cache capacity per node; 0 = unbounded (the paper's setting:
  // short videos make full retention cheap). Bounded caches evict FIFO —
  // see ablation_cache for the sensitivity study.
  std::size_t cacheCapacityVideos = 0;

  // --- sessions / churn --------------------------------------------------------
  std::size_t sessionsPerUser = 25;
  std::size_t videosPerSession = 10;
  // Mean of the exponential (Poisson-process) off time between sessions.
  double offTimeMeanSeconds = 8000.0;
  // Stagger of initial logins over the run start.
  double loginStaggerSeconds = 4000.0;
  // Fraction of departures that are abrupt (no goodbye messages) — exercises
  // the probe/repair path. The paper's churn is implicit; we make it explicit.
  double abruptDepartureFraction = 0.1;

  // Probability that a viewer abandons a video partway (watching a uniform
  // 10-90% of it) instead of finishing — Chatzopoulou et al. (cited in §II)
  // observed watch time anti-correlates with popularity. Abandonment
  // shortens PA-VoD provider lifetimes in particular.
  double abandonProbability = 0.0;

  // --- video selection (§V: 75 / 15 / 10 rule) ---------------------------------
  double sameChannelProbability = 0.75;
  double sameCategoryProbability = 0.15;

  // --- bandwidth ----------------------------------------------------------------
  double peerUploadBps = 1'000'000.0;
  double peerDownloadBps = 4'000'000.0;
  // Origin server uplink. Table I prints "5 mbps", which cannot serve even
  // one percent of the paper's own 10,000-node demand; we default to a value
  // that is scarce (saturates under PA-VoD) but not deadlocked. See
  // EXPERIMENTS.md. Set per experiment: ~20 kbps per simulated user.
  double serverUploadBps = 200'000'000.0;

  // --- protocol timers -------------------------------------------------------
  // Deadline for each search phase (channel overlay, then category overlay).
  sim::SimTime searchPhaseTimeout = 800 * sim::kMillisecond;
  // Bounded retry of an exhausted overlay search before the server fallback
  // (hardening for lossy networks / fault injection; 0 = the paper's
  // single-attempt search). Each retry waits searchRetryBackoff * 2^attempt.
  std::size_t searchRetries = 0;
  sim::SimTime searchRetryBackoff = 400 * sim::kMillisecond;
  // Give up on a first chunk after this long (user abandons; counted).
  sim::SimTime firstChunkTimeout = 60 * sim::kSecond;
  // Background download of the video body is abandoned after this long.
  sim::SimTime bodyDownloadTimeout = 20 * sim::kMinute;
  // Neighbor probing period (§V: nodes probe every 10 minutes).
  sim::SimTime probeInterval = 10 * sim::kMinute;
  // Server request processing time (directory lookup).
  sim::SimTime serverProcessing = 2 * sim::kMillisecond;

  // --- overload control ------------------------------------------------------
  // Flow priorities, load shedding, prefetch backpressure, and circuit
  // breakers; inert by default (overload.any() == false) so baseline runs
  // stay bitwise-identical. Parsed from --overload; see vod/overload.h.
  OverloadConfig overload;

  [[nodiscard]] double chunkBytes(double videoLengthSeconds) const {
    const double total = videoLengthSeconds * bitrateBps / 8.0;
    return total / static_cast<double>(chunksPerVideo);
  }
};

}  // namespace st::vod
