#include "vod/video_cache.h"

#include <algorithm>

namespace st::vod {

VideoCache::VideoCache(std::size_t maxVideos, std::size_t prefetchSlots)
    : maxVideos_(maxVideos), prefetchSlots_(prefetchSlots) {}

void VideoCache::insert(VideoId video) {
  if (!videos_.insert(video).second) return;
  videoOrder_.push_back(video);
  removeFirstChunk(video);  // full copy subsumes the prefetched chunk
  evictIfNeeded();
}

void VideoCache::evictIfNeeded() {
  if (maxVideos_ == 0) return;
  while (videos_.size() > maxVideos_) {
    const VideoId victim = videoOrder_.front();
    videoOrder_.erase(videoOrder_.begin());
    videos_.erase(victim);
  }
}

VideoId VideoCache::randomVideo(Rng& rng) const {
  if (videoOrder_.empty()) return VideoId::invalid();
  return videoOrder_[rng.uniformInt(videoOrder_.size())];
}

void VideoCache::insertFirstChunk(VideoId video) {
  if (videos_.count(video) > 0) return;  // already have the whole video
  if (!prefetched_.insert(video).second) return;
  prefetchOrder_.push_back(video);
  while (prefetchSlots_ != 0 && prefetched_.size() > prefetchSlots_) {
    const VideoId victim = prefetchOrder_.front();
    prefetchOrder_.pop_front();
    prefetched_.erase(victim);
  }
}

void VideoCache::removeFirstChunk(VideoId video) {
  if (prefetched_.erase(video) == 0) return;
  const auto it =
      std::find(prefetchOrder_.begin(), prefetchOrder_.end(), video);
  if (it != prefetchOrder_.end()) prefetchOrder_.erase(it);
}

void VideoCache::clear() {
  videos_.clear();
  videoOrder_.clear();
  prefetched_.clear();
  prefetchOrder_.clear();
}

}  // namespace st::vod
