// Flood-query duplicate suppression as a generation-counter array.
//
// Every node used to keep an `unordered_set<uint64>` of recently seen query
// ids plus a trim deque — one hash insert and amortized allocations per
// flood visit, on the hottest protocol path. Query ids are unique and never
// reused (see SlotPool), so "has this node seen this query" collapses to a
// single stamp per node: mark_[node] == queryId is one uint64 compare, and
// marking is one store. No allocation, no trimming, O(nodes) memory total
// instead of O(nodes * window).
//
// Precision: a stamp only remembers the most recent query that visited the
// node. If two concurrent floods interleave visits to the same node, the
// older query may be re-forwarded there once — the same class of
// approximation as the old 128-entry eviction window, still bounded by the
// query TTL, and deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace st::vod {

class QueryDedup {
 public:
  explicit QueryDedup(std::size_t nodeCount) : mark_(nodeCount, 0) {}

  // True if `queryId` was the last query seen at `node`; marks it otherwise.
  // Query ids must be nonzero and never reused (SlotPool ids qualify).
  bool checkAndMark(std::size_t node, std::uint64_t queryId) {
    if (mark_[node] == queryId) return true;
    mark_[node] = queryId;
    return false;
  }

  // Checkpoint/restore: stamps are outstanding query ids; a restored run
  // must suppress exactly the same duplicate visits.
  [[nodiscard]] const std::vector<std::uint64_t>& marks() const {
    return mark_;
  }
  bool restoreMarks(std::vector<std::uint64_t> marks) {
    if (marks.size() != mark_.size()) return false;
    mark_ = std::move(marks);
    return true;
  }

 private:
  std::vector<std::uint64_t> mark_;
};

}  // namespace st::vod
