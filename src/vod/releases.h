// Dynamic uploads: videos published while the system runs.
//
// The whole point of a YouTube channel is that subscribers track new
// uploads ("once a new video is uploaded to his subscribed channels, a feed
// of the uploaded video is provided on his YouTube homepage", §I). The
// ReleaseManager holds a chosen set of videos back, publishes them at
// scheduled instants, and pushes feed entries to (a sampled subset of) the
// channel's subscribers, who watch the new video at their next opportunity.
// This reproduces the flash-crowd dynamics that motivate the paper's
// scalability argument.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "snapshot/codec.h"
#include "vod/context.h"
#include "vod/selector.h"

namespace st::vod {

struct ReleasePlanEntry {
  VideoId video;
  sim::SimTime at;
};

class ReleaseManager final : public sim::EventFactory {
 public:
  // Tag kinds (Component::kReleases) — append-only, stored in snapshots.
  static constexpr std::uint8_t kReleaseEvent = 0;  // a = video

  // `feedWatchProbability`: chance that a subscriber puts the new upload
  // into their watch queue.
  ReleaseManager(SystemContext& ctx, VideoSelector& selector,
                 double feedWatchProbability, std::uint64_t seed);
  ~ReleaseManager() override;

  [[nodiscard]] sim::Callback rebuild(const sim::EventTag& tag) override;

  // Marks every planned video unreleased and schedules its publication.
  // Call once, before Simulator::run().
  void schedule(std::vector<ReleasePlanEntry> plan);

  [[nodiscard]] std::size_t releasesFired() const { return releasesFired_; }
  [[nodiscard]] std::size_t feedNotifications() const {
    return feedNotifications_;
  }

  // Serializes the feed-sampling RNG and the fired/notified tallies.
  // Pending release events live in the simulator queue; the released flags
  // themselves live in SystemContext. Do NOT call schedule() on a restored
  // run — the queue already holds the not-yet-fired releases.
  void saveState(snapshot::Writer& w) const;
  bool loadState(snapshot::Reader& r);

  // Builds a plan: `perChannel` videos of every channel with more than
  // `minChannelSize` videos (never the channel's top video, so every
  // channel keeps a released head), with release times uniform in
  // [windowStart, windowEnd].
  static std::vector<ReleasePlanEntry> uniformPlan(
      const trace::Catalog& catalog, std::size_t perChannel,
      sim::SimTime windowStart, sim::SimTime windowEnd, std::uint64_t seed,
      std::size_t minChannelSize = 3);

 private:
  void release(VideoId video);

  SystemContext& ctx_;
  VideoSelector& selector_;
  double feedWatchProbability_;
  Rng rng_;
  std::size_t releasesFired_ = 0;
  std::size_t feedNotifications_ = 0;
};

}  // namespace st::vod
