#include "vod/session.h"

#include <cassert>

namespace st::vod {

SessionDriver::SessionDriver(SystemContext& ctx, VodSystem& system,
                             TransferManager& transfers,
                             VideoSelector& selector, std::uint64_t seed)
    : ctx_(ctx),
      system_(system),
      transfers_(transfers),
      selector_(selector),
      users_(ctx.catalog().userCount()) {
  userRngs_.reserve(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    userRngs_.push_back(Rng::forPurpose(seed ^ (0x5e55ull << 16 | i), "churn"));
  }
  system_.setPlaybackCallback(
      [this](UserId user, VideoId video, sim::SimTime delay, bool timedOut) {
        onPlaybackReady(user, video, delay, timedOut);
      });
  ctx_.sim().registerFactory(sim::Component::kSession, this);
}

SessionDriver::~SessionDriver() {
  if (ctx_.sim().factory(sim::Component::kSession) == this) {
    ctx_.sim().registerFactory(sim::Component::kSession, nullptr);
  }
}

sim::Callback SessionDriver::rebuild(const sim::EventTag& tag) {
  const UserId user{static_cast<std::uint32_t>(tag.a)};
  switch (tag.kind) {
    case kLoginEvent:
      return [this, user] { login(user); };
    case kPlaybackDoneEvent: {
      const VideoId video{static_cast<std::uint32_t>(tag.b)};
      return [this, user, video] { onPlaybackComplete(user, video); };
    }
    default:
      assert(false && "unknown session event kind");
      return [] {};
  }
}

void SessionDriver::start() {
  const double stagger = ctx_.config().loginStaggerSeconds;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const UserId user{static_cast<std::uint32_t>(i)};
    const sim::SimTime at =
        sim::fromSeconds(userRngs_[i].uniform(0.0, stagger));
    ctx_.sim().scheduleAtTagged(
        at, sim::makeTag(sim::Component::kSession, kLoginEvent, user.value()));
  }
}

void SessionDriver::login(UserId user) {
  UserState& state = users_[user.index()];
  assert(!state.online);
  state.online = true;
  state.videosThisSession = 0;
  state.currentVideo = VideoId::invalid();
  ctx_.setOnline(user, true);
  ST_TRACE(ctx_.trace(), ctx_.sim().now(), kLogin, user.value(), 0,
           state.sessionsDone);
  system_.onLogin(user);
  requestNext(user);
}

void SessionDriver::requestNext(UserId user) {
  UserState& state = users_[user.index()];
  const VideoId video =
      state.currentVideo.valid()
          ? selector_.nextVideo(user, state.currentVideo)
          : selector_.firstVideo(user);
  state.currentVideo = video;
  system_.requestVideo(user, video);
}

void SessionDriver::onPlaybackReady(UserId user, VideoId video,
                                    sim::SimTime delay, bool timedOut) {
  UserState& state = users_[user.index()];
  if (!state.online || video != state.currentVideo) return;  // stale event
  if (timedOut) {
    ctx_.metrics().recordStartupTimeout();
    // The user gave up on this video; move on after a short pause.
    ctx_.sim().scheduleTagged(
        sim::kSecond, sim::makeTag(sim::Component::kSession, kPlaybackDoneEvent,
                                   user.value(), video.value()));
    return;
  }
  ctx_.metrics().recordStartupDelay(sim::toMillis(delay));
  double length = ctx_.library().asset(video).lengthSeconds;
  Rng& rng = userRngs_[user.index()];
  if (ctx_.config().abandonProbability > 0.0 &&
      rng.bernoulli(ctx_.config().abandonProbability)) {
    // Early abandonment: the viewer quits partway through.
    length *= rng.uniform(0.1, 0.9);
  }
  ctx_.sim().scheduleTagged(
      sim::fromSeconds(length),
      sim::makeTag(sim::Component::kSession, kPlaybackDoneEvent, user.value(),
                   video.value()));
}

void SessionDriver::onPlaybackComplete(UserId user, VideoId video) {
  UserState& state = users_[user.index()];
  if (!state.online || video != state.currentVideo) return;
  system_.onPlaybackComplete(user, video);
  ++state.videosThisSession;
  ++videosWatched_;
  const VodSystem::NodeStats stats = system_.nodeStats(user);
  ctx_.metrics().recordLinks(state.videosThisSession, stats.links);
  ctx_.metrics().recordRedundantLinks(stats.redundantLinks);
  if (state.videosThisSession < ctx_.config().videosPerSession) {
    requestNext(user);
    return;
  }
  logout(user);
}

void SessionDriver::logout(UserId user) {
  assert(users_[user.index()].online);
  const bool graceful = !userRngs_[user.index()].bernoulli(
      ctx_.config().abruptDepartureFraction);
  endSession(user, graceful);
}

void SessionDriver::crashUser(UserId user) {
  if (!users_[user.index()].online) return;
  // No RNG draw here: the graceful/abrupt stream stays aligned with the
  // fault-free run for every session the injector does not touch.
  endSession(user, /*graceful=*/false);
}

void SessionDriver::endSession(UserId user, bool graceful) {
  UserState& state = users_[user.index()];
  assert(state.online);
  state.online = false;
  ctx_.setOnline(user, false);
  ST_TRACE(ctx_.trace(), ctx_.sim().now(), kLogout, user.value(), 0,
           graceful ? 1 : 0);
  transfers_.onUserOffline(user);
  system_.onLogout(user, graceful);

  ++state.sessionsDone;
  ++sessionsCompleted_;
  if (state.sessionsDone >= ctx_.config().sessionsPerUser) {
    ++usersCompleted_;
    return;
  }
  const double offSeconds = userRngs_[user.index()].exponential(
      ctx_.config().offTimeMeanSeconds);
  ctx_.sim().scheduleTagged(
      sim::fromSeconds(offSeconds),
      sim::makeTag(sim::Component::kSession, kLoginEvent, user.value()));
}

void SessionDriver::saveState(snapshot::Writer& w) const {
  w.section(0x53534553);  // "SESS"
  w.u64(users_.size());
  for (const UserState& state : users_) {
    w.u64(state.sessionsDone);
    w.u64(state.videosThisSession);
    w.u32(state.currentVideo.value());
    w.boolean(state.online);
  }
  for (const Rng& rng : userRngs_) {
    const Rng::State state = rng.state();
    for (const std::uint64_t word : state.s) w.u64(word);
    w.f64(state.spareNormal);
    w.boolean(state.hasSpareNormal);
  }
  w.u64(usersCompleted_);
  w.u64(sessionsCompleted_);
  w.u64(videosWatched_);
}

bool SessionDriver::loadState(snapshot::Reader& r) {
  r.section(0x53534553, "session driver");
  const std::size_t userCount = r.count(8 + 8 + 4 + 1);
  if (!r.ok() || userCount != users_.size()) {
    r.fail("session driver user count mismatch");
    return false;
  }
  std::vector<UserState> users(userCount);
  for (UserState& state : users) {
    state.sessionsDone = r.u64();
    state.videosThisSession = r.u64();
    state.currentVideo = VideoId{r.u32()};
    state.online = r.boolean();
  }
  std::vector<Rng::State> rngs(userCount);
  for (Rng::State& state : rngs) {
    for (std::uint64_t& word : state.s) word = r.u64();
    state.spareNormal = r.f64();
    state.hasSpareNormal = r.boolean();
  }
  const std::uint64_t usersCompleted = r.u64();
  const std::uint64_t sessionsCompleted = r.u64();
  const std::uint64_t videosWatched = r.u64();
  if (!r.ok()) return false;
  users_ = std::move(users);
  for (std::size_t i = 0; i < userCount; ++i) userRngs_[i].setState(rngs[i]);
  usersCompleted_ = static_cast<std::size_t>(usersCompleted);
  sessionsCompleted_ = sessionsCompleted;
  videosWatched_ = videosWatched;
  return true;
}

}  // namespace st::vod
