#include "vod/session.h"

#include <cassert>

namespace st::vod {

SessionDriver::SessionDriver(SystemContext& ctx, VodSystem& system,
                             TransferManager& transfers,
                             VideoSelector& selector, std::uint64_t seed)
    : ctx_(ctx),
      system_(system),
      transfers_(transfers),
      selector_(selector),
      users_(ctx.catalog().userCount()) {
  userRngs_.reserve(users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    userRngs_.push_back(Rng::forPurpose(seed ^ (0x5e55ull << 16 | i), "churn"));
  }
  system_.setPlaybackCallback(
      [this](UserId user, VideoId video, sim::SimTime delay, bool timedOut) {
        onPlaybackReady(user, video, delay, timedOut);
      });
}

void SessionDriver::start() {
  const double stagger = ctx_.config().loginStaggerSeconds;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const UserId user{static_cast<std::uint32_t>(i)};
    const sim::SimTime at =
        sim::fromSeconds(userRngs_[i].uniform(0.0, stagger));
    ctx_.sim().scheduleAt(at, [this, user] { login(user); });
  }
}

void SessionDriver::login(UserId user) {
  UserState& state = users_[user.index()];
  assert(!state.online);
  state.online = true;
  state.videosThisSession = 0;
  state.currentVideo = VideoId::invalid();
  ctx_.setOnline(user, true);
  ST_TRACE(ctx_.trace(), ctx_.sim().now(), kLogin, user.value(), 0,
           state.sessionsDone);
  system_.onLogin(user);
  requestNext(user);
}

void SessionDriver::requestNext(UserId user) {
  UserState& state = users_[user.index()];
  const VideoId video =
      state.currentVideo.valid()
          ? selector_.nextVideo(user, state.currentVideo)
          : selector_.firstVideo(user);
  state.currentVideo = video;
  system_.requestVideo(user, video);
}

void SessionDriver::onPlaybackReady(UserId user, VideoId video,
                                    sim::SimTime delay, bool timedOut) {
  UserState& state = users_[user.index()];
  if (!state.online || video != state.currentVideo) return;  // stale event
  if (timedOut) {
    ctx_.metrics().recordStartupTimeout();
    // The user gave up on this video; move on after a short pause.
    ctx_.sim().schedule(sim::kSecond,
                        [this, user, video] { onPlaybackComplete(user, video); });
    return;
  }
  ctx_.metrics().recordStartupDelay(sim::toMillis(delay));
  double length = ctx_.library().asset(video).lengthSeconds;
  Rng& rng = userRngs_[user.index()];
  if (ctx_.config().abandonProbability > 0.0 &&
      rng.bernoulli(ctx_.config().abandonProbability)) {
    // Early abandonment: the viewer quits partway through.
    length *= rng.uniform(0.1, 0.9);
  }
  ctx_.sim().schedule(sim::fromSeconds(length), [this, user, video] {
    onPlaybackComplete(user, video);
  });
}

void SessionDriver::onPlaybackComplete(UserId user, VideoId video) {
  UserState& state = users_[user.index()];
  if (!state.online || video != state.currentVideo) return;
  system_.onPlaybackComplete(user, video);
  ++state.videosThisSession;
  ++videosWatched_;
  const VodSystem::NodeStats stats = system_.nodeStats(user);
  ctx_.metrics().recordLinks(state.videosThisSession, stats.links);
  ctx_.metrics().recordRedundantLinks(stats.redundantLinks);
  if (state.videosThisSession < ctx_.config().videosPerSession) {
    requestNext(user);
    return;
  }
  logout(user);
}

void SessionDriver::logout(UserId user) {
  assert(users_[user.index()].online);
  const bool graceful = !userRngs_[user.index()].bernoulli(
      ctx_.config().abruptDepartureFraction);
  endSession(user, graceful);
}

void SessionDriver::crashUser(UserId user) {
  if (!users_[user.index()].online) return;
  // No RNG draw here: the graceful/abrupt stream stays aligned with the
  // fault-free run for every session the injector does not touch.
  endSession(user, /*graceful=*/false);
}

void SessionDriver::endSession(UserId user, bool graceful) {
  UserState& state = users_[user.index()];
  assert(state.online);
  state.online = false;
  ctx_.setOnline(user, false);
  ST_TRACE(ctx_.trace(), ctx_.sim().now(), kLogout, user.value(), 0,
           graceful ? 1 : 0);
  transfers_.onUserOffline(user);
  system_.onLogout(user, graceful);

  ++state.sessionsDone;
  ++sessionsCompleted_;
  if (state.sessionsDone >= ctx_.config().sessionsPerUser) {
    ++usersCompleted_;
    return;
  }
  const double offSeconds = userRngs_[user.index()].exponential(
      ctx_.config().offTimeMeanSeconds);
  ctx_.sim().schedule(sim::fromSeconds(offSeconds),
                      [this, user] { login(user); });
}

}  // namespace st::vod
