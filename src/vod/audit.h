// Structural-invariant audit report shared by every VoD system.
//
// The paper's overlay has a machine-checkable contract (§IV-A): bounded
// inner/inter link budgets, symmetric links, inter-links only into sibling
// channels of the same interest category, and no links to nodes that
// departed longer ago than one probe round can tolerate. Each system's
// auditInvariants() walks its own state and appends violations here; the
// fault::InvariantChecker drives the walk periodically and decides which
// violations are real.
//
// Two severities:
//  * violate()          — unconditionally wrong the instant it is observed
//    (an oversized link set, a watch owned by an offline user).
//  * violateTransient() — wrong only if it *persists*: in-flight goodbye
//    messages and not-yet-probed stale links legitimately look broken for a
//    bounded window. The checker confirms these only when the same
//    (rule, actor, subject) triple stays violated for longer than the
//    repair horizon.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace st::vod {

struct AuditViolation {
  std::string rule;           // stable identifier, e.g. "inner_cap"
  std::uint32_t actor = 0;    // the node whose state is wrong
  std::uint32_t subject = 0;  // counterpart: neighbor, video, ... (rule-specific)
  bool transient = false;     // confirm-on-persistence (see header comment)
};

class AuditReport {
 public:
  AuditReport(sim::SimTime now, sim::SimTime staleBefore)
      : now_(now), staleBefore_(staleBefore) {}

  [[nodiscard]] sim::SimTime now() const { return now_; }
  // Links to nodes offline since before this instant are past the repair
  // horizon and must have been probed out already.
  [[nodiscard]] sim::SimTime staleBefore() const { return staleBefore_; }

  void violate(std::string rule, std::uint32_t actor, std::uint32_t subject) {
    violations_.push_back({std::move(rule), actor, subject, false});
  }
  void violateTransient(std::string rule, std::uint32_t actor,
                        std::uint32_t subject) {
    violations_.push_back({std::move(rule), actor, subject, true});
  }

  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

 private:
  sim::SimTime now_;
  sim::SimTime staleBefore_;
  std::vector<AuditViolation> violations_;
};

}  // namespace st::vod
