#include "vod/selector.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "vod/context.h"

namespace st::vod {

VideoSelector::VideoSelector(const trace::Catalog& catalog,
                             const VodConfig& config, std::uint64_t seed)
    : catalog_(catalog),
      config_(config),
      watched_(catalog.userCount()),
      feed_(catalog.userCount()) {
  userRngs_.reserve(catalog.userCount());
  for (std::size_t i = 0; i < catalog.userCount(); ++i) {
    userRngs_.push_back(
        Rng::forPurpose(seed ^ (0xabcd0000ull + i), "selector"));
  }

  std::vector<double> globalWeights;
  globalWeights.reserve(catalog.channelCount());
  for (const trace::Channel& channel : catalog.channels()) {
    globalWeights.push_back(channel.viewFrequency);
  }
  globalChannelSampler_ = WeightedSampler{std::span<const double>(globalWeights)};

  categorySamplers_.reserve(catalog.categoryCount());
  for (const trace::Category& category : catalog.categories()) {
    std::vector<double> weights;
    weights.reserve(category.channels.size());
    for (const ChannelId channelId : category.channels) {
      weights.push_back(catalog.channel(channelId).viewFrequency);
    }
    categorySamplers_.emplace_back(std::span<const double>(weights));
  }
}

const ZipfDistribution& VideoSelector::zipfFor(std::size_t size) {
  auto it = zipfBySize_.find(size);
  if (it == zipfBySize_.end()) {
    it = zipfBySize_
             .emplace(size, ZipfDistribution(size, /*exponent=*/1.0))
             .first;
  }
  return it->second;
}

bool VideoSelector::isReleased(VideoId video) const {
  return ctx_ == nullptr || ctx_->isReleased(video);
}

VideoId VideoSelector::popFeed(UserId user) {
  auto& queue = feed_[user.index()];
  auto& seen = watched_[user.index()];
  while (!queue.empty()) {
    const VideoId video = queue.front();
    queue.pop_front();
    if (!isReleased(video) || seen.count(video) > 0) continue;
    seen.insert(video);
    ++feedWatches_;
    return video;
  }
  return VideoId::invalid();
}

VideoId VideoSelector::pickFor(UserId user, ChannelId channelId) {
  Rng& rng = userRngs_[user.index()];
  auto& seen = watched_[user.index()];
  VideoId candidate = videoWithinChannel(rng, channelId);
  for (int attempt = 0;
       attempt < 8 && (seen.count(candidate) > 0 || !isReleased(candidate));
       ++attempt) {
    candidate = videoWithinChannel(rng, channelId);
  }
  if (!isReleased(candidate)) {
    // Very small channel fully unreleased is a configuration error; pick the
    // channel's top released video deterministically as a last resort.
    for (const VideoId video : catalog_.channel(channelId).videos) {
      if (isReleased(video)) {
        candidate = video;
        break;
      }
    }
  }
  seen.insert(candidate);
  return candidate;
}

VideoId VideoSelector::videoWithinChannel(Rng& rng, ChannelId channelId) {
  const trace::Channel& channel = catalog_.channel(channelId);
  assert(!channel.videos.empty());
  // channel.videos is sorted by popularity rank; Zipf over ranks gives the
  // §IV-B viewing distribution.
  const std::size_t rank = zipfFor(channel.videos.size()).sample(rng);
  return channel.videos[rank];
}

ChannelId VideoSelector::channelWithinCategory(Rng& rng,
                                               CategoryId categoryId) {
  const trace::Category& category = catalog_.category(categoryId);
  if (category.channels.empty()) {
    // Degenerate category: fall back to the global sampler.
    return ChannelId{
        static_cast<std::uint32_t>(globalChannelSampler_.sample(rng))};
  }
  const auto& sampler = categorySamplers_[categoryId.index()];
  return category.channels[sampler.sample(rng)];
}

VideoId VideoSelector::firstVideo(UserId user) {
  if (const VideoId feed = popFeed(user); feed.valid()) return feed;
  Rng& rng = userRngs_[user.index()];
  const trace::User& profile = catalog_.user(user);
  ChannelId channelId;
  if (!profile.subscriptions.empty()) {
    // Subscribed channel weighted by view frequency.
    std::vector<double> weights;
    weights.reserve(profile.subscriptions.size());
    for (const ChannelId sub : profile.subscriptions) {
      weights.push_back(catalog_.channel(sub).viewFrequency);
    }
    const WeightedSampler sampler{std::span<const double>(weights)};
    channelId = profile.subscriptions[sampler.sample(rng)];
  } else if (!profile.interests.empty()) {
    const CategoryId interest =
        profile.interests[rng.uniformInt(profile.interests.size())];
    channelId = channelWithinCategory(rng, interest);
  } else {
    channelId = ChannelId{
        static_cast<std::uint32_t>(globalChannelSampler_.sample(rng))};
  }
  return pickFor(user, channelId);
}

VideoId VideoSelector::nextVideo(UserId user, VideoId current) {
  if (const VideoId feed = popFeed(user); feed.valid()) return feed;
  Rng& rng = userRngs_[user.index()];
  const trace::Video& video = catalog_.video(current);
  const trace::Channel& channel = catalog_.channel(video.channel);
  const double roll = rng.uniform();

  if (roll < config_.sameChannelProbability) {
    return pickFor(user, channel.id);
  }
  if (roll <
      config_.sameChannelProbability + config_.sameCategoryProbability) {
    // Same category but a *different* channel (the same-channel case has its
    // own 75% branch); bounded resampling against popular-channel dominance.
    ChannelId next = channelWithinCategory(rng, channel.primaryCategory());
    for (int attempt = 0; attempt < 8 && next == channel.id; ++attempt) {
      next = channelWithinCategory(rng, channel.primaryCategory());
    }
    return pickFor(user, next);
  }
  // Different category: resample until the category changes (bounded tries —
  // with one category there is nowhere else to go).
  const CategoryId currentCategory = channel.primaryCategory();
  for (int attempt = 0; attempt < 8; ++attempt) {
    const CategoryId other{
        static_cast<std::uint32_t>(rng.uniformInt(catalog_.categoryCount()))};
    if (other == currentCategory) continue;
    if (catalog_.category(other).channels.empty()) continue;
    return pickFor(user, channelWithinCategory(rng, other));
  }
  return pickFor(user, channel.id);
}

void VideoSelector::saveState(snapshot::Writer& w) const {
  w.section(0x4354454c);  // "LETC" — selector
  w.u64(userRngs_.size());
  for (const Rng& rng : userRngs_) {
    const Rng::State state = rng.state();
    for (const std::uint64_t word : state.s) w.u64(word);
    w.f64(state.spareNormal);
    w.boolean(state.hasSpareNormal);
  }
  for (const auto& seen : watched_) {
    std::vector<VideoId> sorted(seen.begin(), seen.end());
    std::sort(sorted.begin(), sorted.end());
    w.u64(sorted.size());
    for (const VideoId video : sorted) w.u32(video.value());
  }
  for (const auto& queue : feed_) {
    w.u64(queue.size());
    for (const VideoId video : queue) w.u32(video.value());
  }
  w.u64(feedWatches_);
}

bool VideoSelector::loadState(snapshot::Reader& r) {
  r.section(0x4354454c, "video selector");
  const std::size_t userCount = r.count(8 * 4 + 8 + 1);
  if (!r.ok() || userCount != userRngs_.size()) {
    r.fail("selector user count mismatch");
    return false;
  }
  std::vector<Rng::State> rngs(userCount);
  for (Rng::State& state : rngs) {
    for (std::uint64_t& word : state.s) word = r.u64();
    state.spareNormal = r.f64();
    state.hasSpareNormal = r.boolean();
  }
  std::vector<std::unordered_set<VideoId>> watched(userCount);
  for (auto& seen : watched) {
    const std::size_t n = r.count(4);
    for (std::size_t i = 0; i < n; ++i) {
      const VideoId video{r.u32()};
      if (video.index() >= catalog_.videoCount()) {
        r.fail("selector watched video out of range");
        return false;
      }
      seen.insert(video);
    }
  }
  std::vector<std::deque<VideoId>> feed(userCount);
  for (auto& queue : feed) {
    const std::size_t n = r.count(4);
    for (std::size_t i = 0; i < n; ++i) {
      const VideoId video{r.u32()};
      if (video.index() >= catalog_.videoCount()) {
        r.fail("selector feed video out of range");
        return false;
      }
      queue.push_back(video);
    }
  }
  const std::uint64_t feedWatches = r.u64();
  if (!r.ok()) return false;
  for (std::size_t i = 0; i < userCount; ++i) userRngs_[i].setState(rngs[i]);
  watched_ = std::move(watched);
  feed_ = std::move(feed);
  feedWatches_ = feedWatches;
  return true;
}

}  // namespace st::vod
