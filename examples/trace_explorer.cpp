// Trace explorer: generate a synthetic YouTube-like catalog, crawl it the
// way the paper crawled YouTube (BFS over subscription->owner links), and
// print the social-network statistics of §III side by side for the full
// graph and the crawled sample.
//
//   ./examples/trace_explorer [--users 2031] [--seed 7] [--max-crawl 500]
#include <cstdio>

#include "trace/crawler.h"
#include "trace/io.h"
#include "trace/generator.h"
#include "trace/stats.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  st::trace::GeneratorParams params;
  params.numUsers = 2'031;  // the paper's crawl size
  params.numChannels = 545;
  params.numVideos = 20'000;
  params = params.scaledTo(
      static_cast<std::size_t>(flags.getInt("users", 2'031)));
  params.seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));
  const auto maxCrawl =
      static_cast<std::size_t>(flags.getInt("max-crawl", 0));
  const std::string savePath = flags.getString("save", "");
  const std::string loadPath = flags.getString("load", "");

  st::trace::Catalog catalog;
  if (!loadPath.empty()) {
    auto loaded = st::trace::loadCatalogFile(loadPath);
    if (!loaded) {
      std::fprintf(stderr, "failed to load trace from %s\n",
                   loadPath.c_str());
      return 1;
    }
    catalog = std::move(*loaded);
    std::printf("Loaded catalog from %s\n", loadPath.c_str());
  } else {
    catalog = st::trace::generateTrace(params);
  }
  if (!savePath.empty()) {
    if (!st::trace::saveCatalogFile(catalog, savePath)) {
      std::fprintf(stderr, "failed to save trace to %s\n", savePath.c_str());
      return 1;
    }
    std::printf("Saved catalog to %s\n", savePath.c_str());
  }
  std::printf("Generated catalog: %zu users, %zu channels, %zu videos, "
              "%zu categories\n\n", catalog.userCount(),
              catalog.channelCount(), catalog.videoCount(),
              catalog.categoryCount());

  const st::trace::TraceStats stats(catalog);
  const auto views = stats.viewsPerVideo();
  const auto subs = stats.subscribersPerChannel();
  const auto similarity = stats.userChannelSimilarity();
  std::printf("views/video   p50=%.0f p90=%.0f p99=%.3g\n",
              views.percentile(50), views.percentile(90),
              views.percentile(99));
  std::printf("subs/channel  p25=%.0f p50=%.0f p75=%.0f\n",
              subs.percentile(25), subs.percentile(50), subs.percentile(75));
  std::printf("similarity    p25=%.2f p50=%.2f p75=%.2f\n\n",
              similarity.percentile(25), similarity.percentile(50),
              similarity.percentile(75));

  const st::trace::CrawlResult crawl = st::trace::crawl(
      catalog, {.seed = params.seed, .maxUsers = maxCrawl});
  std::printf("BFS crawl (paper methodology): visited %zu users, "
              "%zu channels, %zu videos", crawl.users.size(),
              crawl.channels.size(), crawl.videos.size());
  if (crawl.frontierTruncated > 0) {
    std::printf(" (frontier truncated with %zu queued)",
                crawl.frontierTruncated);
  }
  std::printf("\n");

  // Distribution shape of the crawled sample vs the full catalog.
  st::SampleSet sampleViews;
  for (const st::VideoId video : crawl.videos) {
    sampleViews.add(catalog.video(video).views);
  }
  if (!sampleViews.empty()) {
    std::printf("crawled views/video p50=%.0f p90=%.0f "
                "(full graph: p50=%.0f p90=%.0f)\n",
                sampleViews.percentile(50), sampleViews.percentile(90),
                views.percentile(50), views.percentile(90));
    std::printf("\nAs Mislove et al. observed (and the paper relies on), "
                "the truncated BFS\nsample preserves the distribution "
                "shapes used in Figs. 2-13.\n");
  }
  return 0;
}
