// Overload storm: starve the origin server, release a mid-run demand spike
// into a partitioned overlay, and compare SocialTube with the overload
// controls off vs on.
//
//   ./examples/overload_storm [--users 400] [--seed 7] [--threads 2]
//                             [--server-kbps-per-user 12] [--spike 2]
//                             [--faults SPEC] [--overload SPEC]
//                             [--trace-out storm.jsonl]
//
// The baseline scenario runs with every overload knob disabled; the second
// scenario enables --overload (default "on": playback-rate floor, server
// admission control, prefetch backpressure, per-neighbor circuit breakers).
// Under the same spike the controlled run sheds prefetch and over-deadline
// server requests so playback flows keep their floor — rebuffer ratio stays
// inside the SLO while the uncontrolled run degrades for everyone.
//
// --faults defaults to a partition + crash wave timed inside the release
// window, so breakers also see real neighbor failures. Malformed specs and
// unknown flags fail fast with exit code 2, printing the offending token and
// the accepted grammar.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/runner.h"
#include "fault/schedule.h"
#include "trace/generator.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vod/overload.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));
  const auto users = static_cast<std::size_t>(flags.getInt("users", 400));
  const std::size_t threads =
      st::resolveThreadCount(flags.getInt("threads", 0), 1);
  const double serverKbpsPerUser =
      flags.getDouble("server-kbps-per-user", 12.0);
  const auto spike = static_cast<std::size_t>(flags.getInt("spike", 2));
  const std::string traceOut = flags.getString("trace-out", "");
  // Partition one interest cluster and crash 15% of the nodes while the
  // release wave is landing (the window below covers 30-45% of the run).
  const std::string faultSpec = flags.getString(
      "faults", "partition:t=28800,dur=3600,cat=0;crash:t=30000,frac=0.15");
  const std::string overloadSpec = flags.getString("overload", "on");

  {
    st::fault::Schedule parsed;
    std::string error;
    if (!st::fault::Schedule::parse(faultSpec, &parsed, &error)) {
      std::fprintf(stderr, "--faults: %s\n%s\n", error.c_str(),
                   st::fault::Schedule::grammar());
      return 2;
    }
  }
  st::vod::OverloadConfig overload;
  {
    std::string error;
    if (!st::vod::OverloadConfig::parse(overloadSpec, &overload, &error)) {
      std::fprintf(stderr, "--overload: %s\n%s\n", error.c_str(),
                   st::vod::OverloadConfig::grammar());
      return 2;
    }
  }
  if (const auto leftover = flags.unconsumed(); !leftover.empty()) {
    for (const std::string& flag : leftover) {
      std::fprintf(stderr, "unknown flag '--%s'\n", flag.c_str());
    }
    std::fprintf(stderr,
                 "accepted flags: --users --seed --threads "
                 "--server-kbps-per-user --spike --faults --overload "
                 "--trace-out\n");
    return 2;
  }
  if (serverKbpsPerUser <= 0.0) {
    std::fprintf(stderr, "--server-kbps-per-user must be > 0\n");
    return 2;
  }

  st::exp::ExperimentConfig config =
      st::exp::ExperimentConfig::simulationDefaults(seed);
  config = config.scaledTo(users, 4);
  // One simulated day keeps the example quick; the fault times above are
  // absolute seconds inside this horizon.
  config.duration = st::sim::kDay;
  // Starve the server: scaledTo sizes it at 20 kbps/user, which rides out
  // most spikes. 12 kbps/user cannot absorb a release wave alone.
  config.vod.serverUploadBps = serverKbpsPerUser * 1000.0 *
                               static_cast<double>(users);
  // The demand spike: hold videos back and release them in a tight window
  // overlapping the partition, with eager subscribers.
  config.releases.perChannel = spike;
  config.releases.windowStartFraction = 0.30;
  config.releases.windowEndFraction = 0.45;
  config.releases.feedWatchProbability = 0.9;
  config.faults.spec = faultSpec;

  std::printf("Overload storm — %zu users, %.0f kbps/user server, "
              "%zu releases/channel into a partition\n\n",
              users, serverKbpsPerUser, spike);

  const st::trace::Catalog catalog = st::trace::generateTrace(config.trace);
  // Scenario 0 leaves every overload knob off; scenario 1 turns the parsed
  // spec on. Same catalog, same faults, same spike.
  const std::vector<st::vod::OverloadConfig> scenarios = {
      st::vod::OverloadConfig{}, overload};
  std::vector<st::exp::ExperimentResult> results(scenarios.size());
  {
    std::optional<st::ThreadPool> pool;
    if (threads > 1) pool.emplace(std::min(threads, scenarios.size()));
    st::parallelFor(pool ? &*pool : nullptr, scenarios.size(),
                    [&](std::size_t i) {
                      st::exp::ExperimentConfig scenario = config;
                      scenario.vod.overload = scenarios[i];
                      if (!traceOut.empty()) {
                        scenario.obs.traceOut =
                            traceOut + (i == 0 ? ".off" : ".on");
                      }
                      results[i] = st::exp::runExperiment(
                          scenario, st::exp::SystemKind::kSocialTube,
                          &catalog);
                    });
  }

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& result = results[i];
    const bool on = scenarios[i].any();
    std::printf("overload controls %s:\n", on ? "ON " : "OFF");
    std::printf("  startup delay mean/p99  = %.1f / %.1f ms "
                "(%llu timeouts / %llu watches)\n",
                result.startupDelayMs.mean(),
                result.startupDelayMs.percentile(99),
                static_cast<unsigned long long>(result.startupTimeouts()),
                static_cast<unsigned long long>(result.watches()));
    std::printf("  rebuffers               = %llu\n",
                static_cast<unsigned long long>(result.rebuffers()));
    std::printf("  server fallbacks        = %llu (%llu MB served)\n",
                static_cast<unsigned long long>(result.serverFallbacks()),
                static_cast<unsigned long long>(
                    result.serverBytes() / 1'000'000));
    std::printf("  releases fired          = %llu (%llu feed watches)\n",
                static_cast<unsigned long long>(result.releasesFired()),
                static_cast<unsigned long long>(result.feedWatches()));
    if (on) {
      std::printf("  requests shed           = %llu (%llu prefetch "
                  "throttled)\n",
                  static_cast<unsigned long long>(
                      result.counter("server.shed")),
                  static_cast<unsigned long long>(
                      result.counter("prefetch.throttled")));
      std::printf("  breakers opened/closed  = %llu / %llu "
                  "(%llu still open)\n",
                  static_cast<unsigned long long>(
                      result.counter("breaker.opened")),
                  static_cast<unsigned long long>(
                      result.counter("breaker.closed")),
                  static_cast<unsigned long long>(
                      result.counter("breaker.open")));
      std::printf("  rebuffer ratio          = %llu ppm (SLO %llu ppm: %s)\n",
                  static_cast<unsigned long long>(
                      result.counter("slo.rebuffer_ratio_ppm")),
                  static_cast<unsigned long long>(
                      scenarios[i].rebufferSloRatio * 1e6),
                  result.counter("slo.rebuffer_within_target") != 0
                      ? "met" : "MISSED");
    }
    std::printf("\n");
  }
  std::printf("Load shedding trades prefetch and over-deadline server pulls "
              "for playback\nheadroom: the controlled run keeps startup and "
              "rebuffering inside the SLO\nwhile the open-loop run lets the "
              "spike starve everyone equally.\n");
  if (!traceOut.empty()) {
    std::printf("\nEvent traces written to %s.off / %s.on "
                "(JSONL; kind=shed/breaker rows).\n",
                traceOut.c_str(), traceOut.c_str());
  }
  return 0;
}
