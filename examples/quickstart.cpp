// Quickstart: generate a small synthetic YouTube trace, run SocialTube and
// both baselines against it, and print the paper's three headline metrics.
//
//   ./examples/quickstart [--users 1500] [--sessions 8] [--seed 1]
//                         [--planetlab]
#include <cstdio>

#include "exp/config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  const bool planetlab = flags.getBool("planetlab", false);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  st::exp::ExperimentConfig config =
      planetlab ? st::exp::ExperimentConfig::planetLabDefaults(seed)
                : st::exp::ExperimentConfig::simulationDefaults(seed);
  const auto users = static_cast<std::size_t>(
      flags.getInt("users", planetlab ? 250 : 1500));
  const auto sessions =
      static_cast<std::size_t>(flags.getInt("sessions", 8));
  config = config.scaledTo(users, sessions);

  std::printf("SocialTube quickstart — %zu users, %zu channels, %zu videos, "
              "%zu sessions/user (%s mode)\n\n",
              config.trace.numUsers, config.trace.numChannels,
              config.trace.numVideos, config.vod.sessionsPerUser,
              planetlab ? "PlanetLab" : "simulation");

  const auto results = st::exp::runAllSystems(config);

  std::printf("== Normalized peer bandwidth (share of remote chunks served "
              "by peers) ==\n");
  st::exp::printPeerBandwidth(results);

  std::printf("\n== Startup delay (ms) ==\n");
  for (const auto& result : results) {
    st::exp::printStartupDelay(result.system, result);
  }

  std::printf("\n== Maintenance overhead (mean links after n-th video) ==\n");
  st::exp::printMaintenance(results);

  std::printf("\n== Protocol counters ==\n");
  for (const auto& result : results) {
    st::exp::printCounters(result);
  }
  return 0;
}
