// Channel community walk-through: drives the SocialTube protocol objects
// directly (no ExperimentRunner) to show the library's lower-level API —
// the same wiring a custom experiment would use.
//
//   ./examples/channel_community [--seed 1]
#include <cstdio>
#include <memory>

#include "core/socialtube.h"
#include "net/latency.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/flags.h"
#include "vod/context.h"
#include "vod/library.h"
#include "vod/metrics.h"
#include "vod/transfer.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));

  // 1. A small catalog.
  st::trace::GeneratorParams traceParams;
  traceParams.seed = seed;
  traceParams.numUsers = 60;
  traceParams.numChannels = 8;
  traceParams.numVideos = 200;
  const st::trace::Catalog catalog = st::trace::generateTrace(traceParams);

  // 2. The substrate: simulator, clean network, chunked video library.
  st::sim::Simulator simulator;
  st::net::Network network(
      simulator,
      std::make_unique<st::net::CleanLatencyModel>(
          seed, 10 * st::sim::kMillisecond, 60 * st::sim::kMillisecond),
      seed);
  st::vod::VodConfig config;
  st::vod::VideoLibrary library(catalog, config);
  st::vod::Metrics metrics(catalog.userCount(), config.videosPerSession);
  st::vod::SystemContext ctx(simulator, network, catalog, library, config,
                             metrics, seed);
  st::vod::TransferManager transfers(ctx);

  // 3. The protocol under study.
  st::core::SocialTubeSystem socialTube(ctx, transfers);
  socialTube.setPlaybackCallback([&](st::UserId user, st::VideoId video,
                                     st::sim::SimTime delay, bool timedOut) {
    std::printf("  [%7.2f s] user %-3u video %-4u playback %s "
                "(startup %.1f ms)\n",
                st::sim::toSeconds(simulator.now()), user.value(),
                video.value(), timedOut ? "TIMED OUT" : "starts",
                st::sim::toMillis(delay));
  });

  // 4. Hand-drive a small community: five subscribers of one channel watch
  //    its most popular videos one after another.
  const st::trace::Channel& channel = catalog.channel(st::ChannelId{0});
  std::printf("Channel 0: %zu videos, %zu subscribers, category %u\n\n",
              channel.videos.size(), channel.subscribers.size(),
              channel.primaryCategory().value());

  const std::size_t viewers =
      std::min<std::size_t>(5, catalog.userCount());
  for (std::uint32_t i = 0; i < viewers; ++i) {
    const st::UserId user{i};
    const st::VideoId video = channel.videos[i % channel.videos.size()];
    simulator.schedule(static_cast<st::sim::SimTime>(i) * 20 *
                           st::sim::kSecond,
                       [&, user, video] {
                         ctx.setOnline(user, true);
                         socialTube.onLogin(user);
                         std::printf("  [%7.2f s] user %-3u joins and asks "
                                     "for video %u\n",
                                     st::sim::toSeconds(simulator.now()),
                                     user.value(), video.value());
                         socialTube.requestVideo(user, video);
                       });
  }
  simulator.runUntil(10 * st::sim::kMinute);

  // 5. Inspect the community that formed.
  std::printf("\nOverlay after the watch session:\n");
  for (std::uint32_t i = 0; i < viewers; ++i) {
    const st::UserId user{i};
    std::printf("  user %-3u: channel %-3d inner links %zu, inter links %zu, "
                "cache %zu videos + %zu prefetched chunks\n",
                user.value(),
                static_cast<int>(socialTube.currentChannel(user).valid()
                                     ? socialTube.currentChannel(user).value()
                                     : -1),
                socialTube.innerNeighbors(user).size(),
                socialTube.interNeighbors(user).size(),
                socialTube.cache(user).size(),
                socialTube.cache(user).prefetchedCount());
  }
  std::printf("\nChunks served by peers: %llu, by the origin server: %llu\n",
              static_cast<unsigned long long>(metrics.totalPeerChunks()),
              static_cast<unsigned long long>(metrics.totalServerChunks()));
  std::printf("Search outcomes: %llu channel hits, %llu category hits, "
              "%llu server fallbacks, %llu prefetch hits\n",
              static_cast<unsigned long long>(metrics.value("channel_hits")),
              static_cast<unsigned long long>(metrics.value("category_hits")),
              static_cast<unsigned long long>(metrics.value("server_fallbacks")),
              static_cast<unsigned long long>(metrics.value("prefetch_hits")));
  return 0;
}
