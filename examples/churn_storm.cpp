// Churn storm: stress SocialTube with mostly-abrupt departures and short
// sessions, and watch the probe/repair machinery keep the overlay usable.
//
//   ./examples/churn_storm [--users 800] [--abrupt 0.8] [--seed 3]
//                          [--threads 2] [--trace-out storm.jsonl]
//                          [--faults SPEC] [--audit SECONDS]
//                          [--overload SPEC] [--shards N]
//                          [--snapshot-out PATH] [--snapshot-in PATH]
//                          [--snapshot-at SECONDS]
//
// --trace-out dumps the structured protocol-event timeline (JSONL; one file
// per scenario, suffixed ".calm"/".storm") — see EXPERIMENTS.md for how to
// slice the repair/fallback events.
//
// --snapshot-out saves each scenario's complete state at --snapshot-at
// simulated seconds (0 = the horizon) to PATH.calm / PATH.storm.
// --snapshot-in restores ONE snapshot file into BOTH scenarios — the two
// scenarios differ only in config (abrupt fraction, and any --faults /
// --audit layered on after the snapshot point), so a single warmed calm
// state forks into N what-if runs without replaying the warm-up.
//
// --faults layers a scripted fault schedule (src/fault/schedule.h grammar,
// e.g. "crash:t=3600,frac=0.2;loss:t=4000,dur=300,rate=0.3") over both
// scenarios; --audit N runs the structural invariant checker every N
// simulated seconds and reports confirmed violations per scenario.
// --overload enables the overload-control knobs (src/vod/overload.h grammar,
// e.g. "on" or "floor_kbps=200,queue=32,breaker=3").
// --shards N runs both scenarios on the community-sharded engine
// (src/sim/shard.h grammar: a power of two up to 256); results are
// bitwise-identical to the default monolithic engine at any shard count.
//
// Malformed specs and unknown flags fail fast with exit code 2, printing the
// offending token and the accepted grammar.
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "fault/schedule.h"
#include "sim/shard.h"
#include "trace/generator.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "vod/overload.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 3));
  const auto users = static_cast<std::size_t>(flags.getInt("users", 800));
  const double abrupt = flags.getDouble("abrupt", 0.8);
  const std::size_t threads =
      st::resolveThreadCount(flags.getInt("threads", 0), 1);
  const std::string traceOut = flags.getString("trace-out", "");
  const std::string faultSpec = flags.getString("faults", "");
  const double auditSeconds = flags.getDouble("audit", 0.0);
  const std::string overloadSpec = flags.getString("overload", "");
  const std::string snapshotOut = flags.getString("snapshot-out", "");
  const std::string snapshotIn = flags.getString("snapshot-in", "");
  const double snapshotAt = flags.getDouble("snapshot-at", 0.0);

  // Validate every spec up front so a typo fails before minutes of
  // simulation (the runner would abort mid-run otherwise). Exit code 2
  // distinguishes usage errors from run failures.
  {
    st::fault::Schedule parsed;
    std::string error;
    if (!st::fault::Schedule::parse(faultSpec, &parsed, &error)) {
      std::fprintf(stderr, "--faults: %s\n%s\n", error.c_str(),
                   st::fault::Schedule::grammar());
      return 2;
    }
  }
  st::vod::OverloadConfig overload;
  {
    std::string error;
    if (!st::vod::OverloadConfig::parse(overloadSpec, &overload, &error)) {
      std::fprintf(stderr, "--overload: %s\n%s\n", error.c_str(),
                   st::vod::OverloadConfig::grammar());
      return 2;
    }
  }
  st::sim::ShardSpec shards;
  if (const std::string shardSpec = flags.getString("shards", "");
      !shardSpec.empty()) {
    std::string error;
    if (!st::sim::ShardSpec::parse(shardSpec, &shards, &error)) {
      std::fprintf(stderr, "--shards: %s\n%s\n", error.c_str(),
                   st::sim::ShardSpec::grammar());
      return 2;
    }
  }
  if (const auto leftover = flags.unconsumed(); !leftover.empty()) {
    for (const std::string& flag : leftover) {
      std::fprintf(stderr, "unknown flag '--%s'\n", flag.c_str());
    }
    std::fprintf(stderr,
                 "accepted flags: --users --abrupt --seed --threads "
                 "--trace-out --faults --audit --overload --shards "
                 "--snapshot-out --snapshot-in --snapshot-at\n");
    return 2;
  }
  if (auditSeconds < 0.0) {
    std::fprintf(stderr, "--audit must be >= 0 seconds\n");
    return 2;
  }
  if (snapshotAt < 0.0) {
    std::fprintf(stderr, "--snapshot-at must be >= 0 seconds\n");
    return 2;
  }

  st::exp::ExperimentConfig config =
      st::exp::ExperimentConfig::simulationDefaults(seed);
  config = config.scaledTo(users, 8);
  config.vod.offTimeMeanSeconds = 600.0;  // fast session turnover
  // Probe more aggressively than the default so repair keeps pace with
  // churn.
  config.vod.probeInterval = 2 * st::sim::kMinute;
  config.faults.spec = faultSpec;
  config.faults.auditInterval = st::sim::fromSeconds(auditSeconds);
  config.vod.overload = overload;
  config.shards.count = shards.count;

  std::printf("Churn storm — %zu users, %.0f%% abrupt departures, "
              "2-minute probes\n\n", users, abrupt * 100.0);

  const st::trace::Catalog catalog = st::trace::generateTrace(config.trace);
  // The calm and stormy scenarios only differ in config, so they can run
  // side by side; slots keep the printout in calm-first order.
  const std::vector<double> fractions = {0.0, abrupt};
  std::vector<st::exp::ExperimentResult> results(fractions.size());
  {
    std::optional<st::ThreadPool> pool;
    if (threads > 1) pool.emplace(std::min(threads, fractions.size()));
    st::parallelFor(pool ? &*pool : nullptr, fractions.size(),
                    [&](std::size_t i) {
                      st::exp::ExperimentConfig scenario = config;
                      scenario.vod.abruptDepartureFraction = fractions[i];
                      if (!traceOut.empty()) {
                        scenario.obs.traceOut =
                            traceOut + (i == 0 ? ".calm" : ".storm");
                      }
                      if (!snapshotOut.empty()) {
                        scenario.snapshot.out =
                            snapshotOut + (i == 0 ? ".calm" : ".storm");
                      }
                      // Same file for both scenarios: the fork.
                      scenario.snapshot.in = snapshotIn;
                      scenario.snapshot.at = st::sim::fromSeconds(snapshotAt);
                      results[i] = st::exp::runExperiment(
                          scenario, st::exp::SystemKind::kSocialTube,
                          &catalog);
                    });
  }
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const auto& result = results[i];
    std::printf("abrupt departures = %3.0f%%:\n", fractions[i] * 100.0);
    std::printf("  peer bandwidth p50      = %.3f\n",
                result.normalizedPeerBandwidth.percentile(50));
    std::printf("  startup delay mean      = %.1f ms "
                "(%llu timeouts / %llu watches)\n",
                result.startupDelayMs.mean(),
                static_cast<unsigned long long>(result.startupTimeouts()),
                static_cast<unsigned long long>(result.watches()));
    std::printf("  probes sent             = %llu\n",
                static_cast<unsigned long long>(result.probes()));
    std::printf("  repair rounds           = %llu\n",
                static_cast<unsigned long long>(result.repairs()));
    if (config.faults.any()) {
      std::printf("  faults fired            = %llu (%llu crashes, "
                  "%llu messages faulted)\n",
                  static_cast<unsigned long long>(
                      result.counter("fault.events")),
                  static_cast<unsigned long long>(
                      result.counter("fault.crashes")),
                  static_cast<unsigned long long>(
                      result.counter("messages_faulted")));
    }
    if (config.faults.auditInterval > 0) {
      std::printf("  invariant audits        = %llu (%llu violations)\n",
                  static_cast<unsigned long long>(
                      result.counter("invariant.audits")),
                  static_cast<unsigned long long>(
                      result.counter("invariant.violations")));
    }
    if (config.vod.overload.any()) {
      std::printf("  overload: shed          = %llu (%llu prefetch "
                  "throttled)\n",
                  static_cast<unsigned long long>(
                      result.counter("server.shed")),
                  static_cast<unsigned long long>(
                      result.counter("prefetch.throttled")));
      std::printf("  breakers opened/closed  = %llu / %llu "
                  "(%llu still open)\n",
                  static_cast<unsigned long long>(
                      result.counter("breaker.opened")),
                  static_cast<unsigned long long>(
                      result.counter("breaker.closed")),
                  static_cast<unsigned long long>(
                      result.counter("breaker.open")));
      std::printf("  rebuffer ratio          = %llu ppm (SLO %s)\n",
                  static_cast<unsigned long long>(
                      result.counter("slo.rebuffer_ratio_ppm")),
                  result.counter("slo.rebuffer_within_target") != 0
                      ? "met" : "MISSED");
    }
    std::printf("\n");
  }
  std::printf("Even with most nodes vanishing silently, stale links are "
              "probed out and\nre-filled from the server directory; "
              "availability degrades gracefully\ninstead of collapsing.\n");
  if (!traceOut.empty()) {
    std::printf("\nEvent traces written to %s.calm / %s.storm "
                "(JSONL, sim-time ordered).\n",
                traceOut.c_str(), traceOut.c_str());
  }
  return 0;
}
