// PlanetLab-vs-simulation comparison: runs the same three systems in the
// clean PeerSim-style environment and in the wide-area (lossy, heavy-tail
// latency) environment, mirroring the paper's paired Figs. 16-18 (a)/(b).
//
//   ./examples/planetlab_comparison [--seed 1] [--sessions 10] [--threads 3]
//                                   [--snapshot-out PATH] [--snapshot-in PATH]
//                                   [--snapshot-at SECONDS]
//
// Checkpoint/restore (PeerSim environment only; the two environments differ
// in workload shape so a snapshot from one cannot seed the other):
// --snapshot-out saves each system's complete state at --snapshot-at
// simulated seconds (0 = the horizon) to PATH.<system>; --snapshot-in warm-
// starts the figure-16/17/18 sweep from previously saved PATH.<system>
// files instead of replaying the warm-up from scratch.
#include <cstdio>
#include <string>

#include "exp/config.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "sim/time.h"
#include "util/flags.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  const st::Flags flags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  const auto sessions =
      static_cast<std::size_t>(flags.getInt("sessions", 10));
  const std::size_t threads =
      st::resolveThreadCount(flags.getInt("threads", 0), 1);
  const std::string snapshotOut = flags.getString("snapshot-out", "");
  const std::string snapshotIn = flags.getString("snapshot-in", "");
  const double snapshotAt = flags.getDouble("snapshot-at", 0.0);
  if (snapshotAt < 0.0) {
    std::fprintf(stderr, "--snapshot-at must be >= 0 seconds\n");
    return 1;
  }

  for (const bool planetlab : {false, true}) {
    st::exp::ExperimentConfig config =
        planetlab ? st::exp::ExperimentConfig::planetLabDefaults(seed)
                  : st::exp::ExperimentConfig::simulationDefaults(seed);
    if (!planetlab) config = config.scaledTo(1'000, sessions);
    if (planetlab) config.vod.sessionsPerUser = sessions;
    if (!planetlab) {
      config.snapshot.out = snapshotOut;
      config.snapshot.in = snapshotIn;
      config.snapshot.at = st::sim::fromSeconds(snapshotAt);
    }

    std::printf("=== %s environment (%zu nodes) ===\n",
                planetlab ? "PlanetLab (wide-area, 1%% loss)" : "PeerSim",
                config.trace.numUsers);
    const auto results = st::exp::runAllSystems(config, threads);
    st::exp::printPeerBandwidth(results);
    std::printf("\n");
    for (const auto& result : results) {
      st::exp::printStartupDelay(result.system, result);
    }
    std::printf("messages lost: ");
    for (const auto& result : results) {
      std::printf("%s=%llu  ", result.system.c_str(),
                  static_cast<unsigned long long>(result.messagesLost()));
    }
    std::printf("\n\n");
  }
  std::printf("As in the paper, the wide-area run confirms the simulation's "
              "ordering; loss and\nlatency widen every delay but do not "
              "change who wins.\n");
  return 0;
}
